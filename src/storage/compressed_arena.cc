#include "storage/compressed_arena.h"

#include <algorithm>
#include <cstring>
#include <type_traits>

namespace topk {
namespace storage {

namespace {

inline RankingId EntryIdOf(RankingId entry) { return entry; }
inline RankingId EntryIdOf(const AugmentedEntry& entry) { return entry.id; }

/// Conservative 16-bit rank bounds of one block (see BlockRankRange:
/// min saturates downward-safe, max saturates to the unbounded marker).
inline BlockRankRange RankRangeOf(std::span<const AugmentedEntry> block) {
  uint32_t lo = block.front().rank;
  uint32_t hi = block.front().rank;
  for (const AugmentedEntry& entry : block) {
    lo = std::min<uint32_t>(lo, entry.rank);
    hi = std::max<uint32_t>(hi, entry.rank);
  }
  BlockRankRange range;
  range.min_rank = static_cast<uint16_t>(
      std::min<uint32_t>(lo, BlockRankRange::kRankRangeUnbounded));
  range.max_rank =
      hi >= BlockRankRange::kRankRangeUnbounded
          ? BlockRankRange::kRankRangeUnbounded
          : static_cast<uint16_t>(hi);
  return range;
}

template <typename Entry>
bool StrictlyAscendingIds(std::span<const Entry> list) {
  for (size_t i = 1; i < list.size(); ++i) {
    if (EntryIdOf(list[i]) <= EntryIdOf(list[i - 1])) return false;
  }
  return true;
}

inline void EncodeBlock(std::span<const RankingId> block,
                        std::vector<uint8_t>* bytes) {
  EncodeIdBlock(block, bytes);
}
inline void EncodeBlock(std::span<const AugmentedEntry> block,
                        std::vector<uint8_t>* bytes) {
  EncodeAugmentedBlock(block, bytes);
}

inline bool DecodeBlock(uint32_t first_id, uint32_t count,
                        const uint8_t* begin, const uint8_t* end,
                        RankingId* out) {
  return DecodeIdBlock(first_id, count, begin, end, out);
}
inline bool DecodeBlock(uint32_t first_id, uint32_t count,
                        const uint8_t* begin, const uint8_t* end,
                        AugmentedEntry* out) {
  return DecodeAugmentedBlock(first_id, count, begin, end, out);
}

}  // namespace

template <typename Entry>
CompressedPostingArena<Entry> CompressedPostingArena<Entry>::FromArena(
    const PostingArena<Entry>& arena) {
  CompressedPostingArena result;
  auto* lists = result.lists_.mutable_owned();
  auto* blocks = result.blocks_.mutable_owned();
  auto* inline_entries = result.inline_.mutable_owned();
  auto* bytes = result.bytes_.mutable_owned();
  lists->reserve(arena.num_lists());

  for (size_t i = 0; i < arena.num_lists(); ++i) {
    const std::span<const Entry> list = arena.list(i);
    CompressedListMeta meta;
    meta.length = static_cast<uint32_t>(list.size());
    // Short lists — and lists the delta codec cannot represent (ids not
    // strictly ascending, e.g. the blocked index's rank-major lists) —
    // take the inline tier verbatim.
    if (list.size() <= kInlineMaxEntries || !StrictlyAscendingIds(list)) {
      TOPK_DCHECK(inline_entries->size() < CompressedListMeta::kInlineBit);
      meta.head = CompressedListMeta::kInlineBit |
                  static_cast<uint32_t>(inline_entries->size());
      inline_entries->insert(inline_entries->end(), list.begin(), list.end());
      if (!list.empty()) ++result.num_inline_lists_;
    } else {
      TOPK_DCHECK(blocks->size() < CompressedListMeta::kInlineBit);
      meta.head = static_cast<uint32_t>(blocks->size());
      for (size_t offset = 0; offset < list.size();
           offset += kBlockEntries) {
        const size_t count = std::min<size_t>(kBlockEntries,
                                              list.size() - offset);
        const std::span<const Entry> block = list.subspan(offset, count);
        blocks->push_back(CompressedBlockMeta{
            EntryIdOf(block.front()), EntryIdOf(block.back()),
            static_cast<uint32_t>(count),
            static_cast<uint32_t>(bytes->size())});
        if constexpr (std::is_same_v<Entry, AugmentedEntry>) {
          result.ranks_.mutable_owned()->push_back(RankRangeOf(block));
        }
        EncodeBlock(block, bytes);
      }
    }
    lists->push_back(meta);
    result.num_entries_ += list.size();
  }
  return result;
}

template <typename Entry>
Result<CompressedPostingArena<Entry>> CompressedPostingArena<Entry>::Adopt(
    std::span<const CompressedListMeta> lists,
    std::span<const CompressedBlockMeta> blocks,
    std::span<const Entry> inline_entries, std::span<const uint8_t> bytes,
    std::span<const BlockRankRange> rank_ranges) {
  // Bounds-validate all metadata up front (O(lists + blocks), metadata
  // sections only) so no later decode can index outside the sections.
  if (!rank_ranges.empty() && rank_ranges.size() != blocks.size()) {
    return Status::InvalidArgument(
        "snapshot rank-range section does not match the block count");
  }
  for (const BlockRankRange& range : rank_ranges) {
    if (range.min_rank > range.max_rank) {
      return Status::InvalidArgument("snapshot block rank range inverted");
    }
  }
  uint32_t previous_offset = 0;
  for (const CompressedBlockMeta& block : blocks) {
    if (block.count == 0 || block.count > kBlockEntries) {
      return Status::InvalidArgument("snapshot block count out of range");
    }
    if (block.byte_offset > bytes.size() ||
        block.byte_offset < previous_offset) {
      return Status::InvalidArgument("snapshot block offsets not monotone");
    }
    previous_offset = block.byte_offset;
  }
  size_t num_entries = 0;
  for (const CompressedListMeta& meta : lists) {
    const uint32_t head = meta.head & ~CompressedListMeta::kInlineBit;
    if ((meta.head & CompressedListMeta::kInlineBit) != 0) {
      if (head > inline_entries.size() ||
          meta.length > inline_entries.size() - head) {
        return Status::InvalidArgument(
            "snapshot inline list outside the inline section");
      }
    } else {
      if (meta.length == 0) {
        return Status::InvalidArgument("snapshot block list of length 0");
      }
      const size_t num_blocks =
          (static_cast<size_t>(meta.length) + kBlockEntries - 1) /
          kBlockEntries;
      if (head > blocks.size() || num_blocks > blocks.size() - head) {
        return Status::InvalidArgument(
            "snapshot list references blocks outside the block section");
      }
      size_t covered = 0;
      for (size_t b = head; b < head + num_blocks; ++b) {
        covered += blocks[b].count;
      }
      if (covered != meta.length) {
        return Status::InvalidArgument(
            "snapshot block counts do not cover the list length");
      }
    }
    num_entries += meta.length;
  }

  CompressedPostingArena result;
  result.lists_.Adopt(lists.data(), lists.size());
  result.blocks_.Adopt(blocks.data(), blocks.size());
  result.ranks_.Adopt(rank_ranges.data(), rank_ranges.size());
  result.inline_.Adopt(inline_entries.data(), inline_entries.size());
  result.bytes_.Adopt(bytes.data(), bytes.size());
  result.num_entries_ = num_entries;
  for (size_t i = 0; i < lists.size(); ++i) {
    if ((lists[i].head & CompressedListMeta::kInlineBit) != 0 &&
        lists[i].length > 0) {
      ++result.num_inline_lists_;
    }
  }
  return result;
}

template <typename Entry>
bool CompressedPostingArena<Entry>::DecodeListInto(size_t i,
                                                   Entry* out) const {
  TOPK_DCHECK(i < lists_.size());
  const CompressedListMeta meta = lists_.data()[i];
  // Nothing to write for an empty list; `out` may then legitimately be
  // null (e.g. an empty caller buffer), which memcpy's nonnull contract
  // would reject even at size 0.
  if (meta.length == 0) return true;
  const uint32_t head = meta.head & ~CompressedListMeta::kInlineBit;
  if ((meta.head & CompressedListMeta::kInlineBit) != 0) {
    std::memcpy(out, inline_.data() + head,
                static_cast<size_t>(meta.length) * sizeof(Entry));
    return true;
  }
  const auto blocks = blocks_.span();
  size_t cursor = 0;
  for (size_t b = head; cursor < meta.length; ++b) {
    const auto [begin, end] = BlockBytes(b);
    if (!DecodeBlock(blocks[b].first_id, blocks[b].count, begin, end,
                     out + cursor)) {
      return false;
    }
    cursor += blocks[b].count;
  }
  return true;
}

template <typename Entry>
std::span<const Entry> CompressedPostingArena<Entry>::DecodeList(
    size_t i, std::vector<Entry>* scratch) const {
  if (i >= lists_.size()) return {};
  const CompressedListMeta meta = lists_.data()[i];
  if ((meta.head & CompressedListMeta::kInlineBit) != 0) {
    const uint32_t head = meta.head & ~CompressedListMeta::kInlineBit;
    return {inline_.data() + head, meta.length};
  }
  if (scratch->size() < meta.length) {
    scratch->resize(meta.length);  // alloc-ok: scratch setup, grow-only
  }
  if (!DecodeListInto(i, scratch->data())) {
    // Malformed payload (possible only for an adopted snapshot whose
    // checksums were never verified): serve zeros rather than stale
    // scratch. Memory safety never depended on this branch.
    TOPK_DCHECK(false && "malformed compressed posting payload");
    std::fill(scratch->data(), scratch->data() + meta.length, Entry{});
  }
  return {scratch->data(), meta.length};
}

template <typename Entry>
template <typename DiscardFn>
std::span<const Entry> CompressedPostingArena<Entry>::DecodeSelectedBlocks(
    size_t i, std::vector<Entry>* scratch, BlockSkipStats* skip,
    const DiscardFn& discard) const {
  if (i >= lists_.size()) return {};
  const CompressedListMeta meta = lists_.data()[i];
  const uint32_t head = meta.head & ~CompressedListMeta::kInlineBit;
  if ((meta.head & CompressedListMeta::kInlineBit) != 0) {
    // Inline lists carry no block metadata to skip on: hand out the
    // stored entries whole (superset semantics, caller filters).
    return {inline_.data() + head, meta.length};
  }
  if (scratch->size() < meta.length) {
    scratch->resize(meta.length);  // alloc-ok: scratch setup, grow-only
  }
  const auto blocks = blocks_.span();
  size_t cursor = 0;
  size_t remaining = meta.length;
  for (size_t b = head; remaining > 0; ++b) {
    const CompressedBlockMeta& block = blocks[b];
    remaining -= block.count;
    if (skip != nullptr) ++skip->blocks_considered;
    if (discard(b)) {
      // Skipped on metadata alone: the block's payload byte range is
      // never computed, never read (scripts/check_invariants.py lints
      // this continue-before-BlockBytes shape).
      if (skip != nullptr) {
        ++skip->blocks_skipped;
        skip->entries_skipped += block.count;
      }
      continue;
    }
    const auto [begin, end] = BlockBytes(b);
    if (!DecodeBlock(block.first_id, block.count, begin, end,
                     scratch->data() + cursor)) {
      // Same policy as DecodeList: malformed payload (unverified
      // snapshot) serves zeros; memory safety never depended on this.
      TOPK_DCHECK(false && "malformed compressed posting payload");
      std::fill(scratch->data() + cursor,
                scratch->data() + cursor + block.count, Entry{});
    }
    cursor += block.count;
  }
  return {scratch->data(), cursor};
}

template <typename Entry>
std::span<const Entry> CompressedPostingArena<Entry>::DecodeBlocksInRange(
    size_t i, RankingId id_lo, RankingId id_hi, std::vector<Entry>* scratch,
    BlockSkipStats* skip) const {
  const auto blocks = blocks_.span();
  return DecodeSelectedBlocks(
      i, scratch, skip, [&blocks, id_lo, id_hi](size_t b) {
        return blocks[b].last_id < id_lo || blocks[b].first_id > id_hi;
      });
}

template <typename Entry>
std::span<const Entry>
CompressedPostingArena<Entry>::DecodeBlocksInRankWindow(
    size_t i, uint32_t rank_lo, uint32_t rank_hi,
    std::vector<Entry>* scratch, BlockSkipStats* skip) const {
  const auto ranks = ranks_.span();
  if (ranks.empty()) {
    // No rank metadata (plain arena, or an adoption without the
    // section): nothing can be proven disjoint, decode everything.
    return DecodeSelectedBlocks(i, scratch, skip,
                                [](size_t) { return false; });
  }
  return DecodeSelectedBlocks(
      i, scratch, skip, [&ranks, rank_lo, rank_hi](size_t b) {
        return ranks[b].DisjointFrom(rank_lo, rank_hi);
      });
}

template class CompressedPostingArena<RankingId>;
template class CompressedPostingArena<AugmentedEntry>;

}  // namespace storage
}  // namespace topk
