#include "storage/snapshot.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <vector>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "core/failpoint.h"

namespace topk {
namespace storage {

namespace {

constexpr uint64_t kFnvOffset = 14695981039346656037ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t FnvUpdate(uint64_t hash, const void* data, size_t size) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= kFnvPrime;
  }
  return hash;
}

size_t PageAlign(size_t offset) {
  return (offset + kSnapshotPageSize - 1) & ~(kSnapshotPageSize - 1);
}

/// One section to be written: payload pointer + size, id.
struct SectionPayload {
  uint32_t id;
  const void* data;
  size_t size;
};

/// RAII stdio handle so every early return closes the file.
struct FileCloser {
  explicit FileCloser(std::FILE* f) : file(f) {}
  ~FileCloser() {
    if (file != nullptr) std::fclose(file);  // syscall-ok: RAII cleanup
  }
  FileCloser(const FileCloser&) = delete;
  FileCloser& operator=(const FileCloser&) = delete;
  std::FILE* file;
};

bool WritePadded(std::FILE* file, const void* data, size_t size,
                 size_t padded_size) {
  if (size > 0 && std::fwrite(data, 1, size, file) != size) return false;
  static constexpr char kZeros[256] = {};
  size_t pad = padded_size - size;
  while (pad > 0) {
    const size_t chunk = pad < sizeof(kZeros) ? pad : sizeof(kZeros);
    if (std::fwrite(kZeros, 1, chunk, file) != chunk) return false;
    pad -= chunk;
  }
  return true;
}

}  // namespace

uint64_t SnapshotChecksum(const void* data, size_t size) {
  return FnvUpdate(kFnvOffset, data, size);
}

Status WriteStoreSnapshot(
    const RankingStore& store,
    const CompressedPostingArena<RankingId>& arena,
    const CompressedPostingArena<AugmentedEntry>& augmented_arena,
    const std::string& path) {
  if (store.empty()) {
    return Status::InvalidArgument("cannot snapshot an empty store");
  }
  const std::span<const ItemId> items = store.flat_items();
  const std::span<const ItemId> sorted_items = store.flat_sorted_items();
  const std::span<const Rank> sorted_ranks = store.flat_sorted_ranks();
  const std::span<const CompressedListMeta> list_metas = arena.list_metas();
  const std::span<const CompressedBlockMeta> block_metas =
      arena.block_metas();
  const std::span<const RankingId> inline_entries = arena.inline_entries();
  const std::span<const uint8_t> byte_stream = arena.byte_stream();
  const std::span<const CompressedListMeta> aug_list_metas =
      augmented_arena.list_metas();
  const std::span<const CompressedBlockMeta> aug_block_metas =
      augmented_arena.block_metas();
  const std::span<const BlockRankRange> aug_rank_ranges =
      augmented_arena.rank_ranges();
  const std::span<const AugmentedEntry> aug_inline_entries =
      augmented_arena.inline_entries();
  const std::span<const uint8_t> aug_byte_stream =
      augmented_arena.byte_stream();

  const SectionPayload payloads[kSnapshotSectionCount] = {
      {SnapshotSection::kItems, items.data(), items.size_bytes()},
      {SnapshotSection::kSortedItems, sorted_items.data(),
       sorted_items.size_bytes()},
      {SnapshotSection::kSortedRanks, sorted_ranks.data(),
       sorted_ranks.size_bytes()},
      {SnapshotSection::kListMetas, list_metas.data(),
       list_metas.size_bytes()},
      {SnapshotSection::kBlockMetas, block_metas.data(),
       block_metas.size_bytes()},
      {SnapshotSection::kInlineEntries, inline_entries.data(),
       inline_entries.size_bytes()},
      {SnapshotSection::kByteStream, byte_stream.data(),
       byte_stream.size_bytes()},
      {SnapshotSection::kAugListMetas, aug_list_metas.data(),
       aug_list_metas.size_bytes()},
      {SnapshotSection::kAugBlockMetas, aug_block_metas.data(),
       aug_block_metas.size_bytes()},
      {SnapshotSection::kAugRankRanges, aug_rank_ranges.data(),
       aug_rank_ranges.size_bytes()},
      {SnapshotSection::kAugInlineEntries, aug_inline_entries.data(),
       aug_inline_entries.size_bytes()},
      {SnapshotSection::kAugByteStream, aug_byte_stream.data(),
       aug_byte_stream.size_bytes()},
  };

  SnapshotSection table[kSnapshotSectionCount] = {};
  size_t offset = PageAlign(sizeof(SnapshotHeader) + sizeof(table));
  for (uint32_t s = 0; s < kSnapshotSectionCount; ++s) {
    table[s].id = payloads[s].id;
    table[s].reserved = 0;
    table[s].offset = offset;
    table[s].size = payloads[s].size;
    table[s].checksum = SnapshotChecksum(payloads[s].data, payloads[s].size);
    offset = PageAlign(offset + payloads[s].size);
  }

  SnapshotHeader header = {};
  std::memcpy(header.magic, kSnapshotMagic, sizeof(header.magic));
  header.version = kSnapshotVersion;
  header.section_count = kSnapshotSectionCount;
  header.byte_order = kSnapshotByteOrder;
  header.layout = kSnapshotLayout;
  header.k = store.k();
  header.max_item = store.max_item();
  header.num_rankings = store.size();
  header.num_arena_entries = arena.num_entries();
  header.num_augmented_entries = augmented_arena.num_entries();
  header.directory_checksum = SnapshotChecksum(table, sizeof(table));

  // Crash-safe protocol: write everything to `path`.tmp, fsync the file,
  // atomically rename over the final name, then fsync the parent
  // directory so the rename itself survives power loss. A SIGKILL at any
  // injected point below leaves either the previous file intact or the
  // complete new one — never a torn final file; leftover .tmp files are
  // swept by SnapshotManager's startup scan (storage_crash_test proves
  // recovery at every one of these failpoints). Injected failures set
  // errno = EIO so they take the exact annotation path a real kernel
  // error takes.
  const std::string tmp_path = path + ".tmp";
  const auto fail = [&tmp_path](Status status) {
    ::unlink(tmp_path.c_str());  // syscall-ok: best-effort cleanup
    return status;
  };

  FileCloser out(std::fopen(tmp_path.c_str(), "wb"));
  const bool open_failed = TOPK_FAILPOINT("storage.snapshot.open")
                               ? (errno = EIO, true)
                               : out.file == nullptr;
  if (open_failed) {
    return fail(Status::IOErrorFromErrno("open " + tmp_path, errno));
  }
  const size_t preamble = sizeof(header) + sizeof(table);
  bool ok = std::fwrite(&header, 1, sizeof(header), out.file) ==
                sizeof(header) &&
            std::fwrite(table, 1, sizeof(table), out.file) == sizeof(table) &&
            WritePadded(out.file, nullptr, 0, PageAlign(preamble) - preamble);
  for (uint32_t s = 0; ok && s < kSnapshotSectionCount; ++s) {
    if (TOPK_FAILPOINT("storage.snapshot.write")) {
      errno = EIO;
      ok = false;
      break;
    }
    const size_t padded = (s + 1 < kSnapshotSectionCount
                               ? table[s + 1].offset
                               : PageAlign(table[s].offset + table[s].size)) -
                          table[s].offset;
    ok = WritePadded(out.file, payloads[s].data, payloads[s].size, padded);
  }
  if (!ok || std::fflush(out.file) != 0) {
    return fail(Status::IOErrorFromErrno("write " + tmp_path, errno));
  }
  const bool fsync_failed = TOPK_FAILPOINT("storage.snapshot.fsync")
                                ? (errno = EIO, true)
                                : ::fsync(::fileno(out.file)) != 0;
  if (fsync_failed) {
    return fail(Status::IOErrorFromErrno("fsync " + tmp_path, errno));
  }
  {
    std::FILE* file = out.file;
    out.file = nullptr;  // the explicit close below owns it now
    if (std::fclose(file) != 0) {
      return fail(Status::IOErrorFromErrno("close " + tmp_path, errno));
    }
  }
  const bool rename_failed =
      TOPK_FAILPOINT("storage.snapshot.rename")
          ? (errno = EIO, true)
          : std::rename(tmp_path.c_str(), path.c_str()) != 0;
  if (rename_failed) {
    return fail(
        Status::IOErrorFromErrno("rename " + tmp_path + " -> " + path,
                                 errno));
  }
  // Durability of the rename needs the directory entry flushed too.
  const size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : path.substr(0, slash);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd < 0) {
    return Status::IOErrorFromErrno("open directory " + dir, errno);
  }
  const bool dirsync_failed = TOPK_FAILPOINT("storage.snapshot.dirsync")
                                  ? (errno = EIO, true)
                                  : ::fsync(dir_fd) != 0;
  const int dirsync_errno = errno;
  ::close(dir_fd);  // syscall-ok: read-only directory handle
  if (dirsync_failed) {
    return Status::IOErrorFromErrno("fsync directory " + dir, dirsync_errno);
  }
  return Status::OK();
}

Status WriteStoreSnapshot(const RankingStore& store,
                          const CompressedPostingArena<RankingId>& arena,
                          const std::string& path) {
  const CompressedAugmentedIndex augmented =
      CompressedAugmentedIndex::Build(store);
  return WriteStoreSnapshot(store, arena, augmented.arena(), path);
}

/// RAII mmap of a whole file, read-only.
class StoreSnapshot::Mapping {
 public:
  static Result<std::shared_ptr<Mapping>> Open(const std::string& path) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      const int err = errno;
      if (err == ENOENT) {
        return Status::NotFound("cannot open snapshot: " + path);
      }
      return Status::IOErrorFromErrno("open snapshot " + path, err);
    }
    struct stat st = {};
    if (::fstat(fd, &st) != 0) {
      const int err = errno;
      ::close(fd);  // syscall-ok: error-path cleanup
      return Status::IOErrorFromErrno("stat snapshot " + path, err);
    }
    if (st.st_size < 0) {
      ::close(fd);  // syscall-ok: error-path cleanup
      return Status::InvalidArgument("cannot stat snapshot: " + path);
    }
    const auto size = static_cast<size_t>(st.st_size);
    if (size == 0) {
      ::close(fd);  // syscall-ok: error-path cleanup
      return Status::InvalidArgument("snapshot file is empty: " + path);
    }
    void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    int err = errno;
    ::close(fd);  // syscall-ok: the mapping keeps its own reference
    if (TOPK_FAILPOINT("storage.snapshot.mmap") && base != MAP_FAILED) {
      // The degraded-read path treats an injected mmap failure exactly
      // like ENOMEM from the kernel: unwind and report.
      ::munmap(base, size);  // syscall-ok: unwinding the injected failure
      base = MAP_FAILED;
      err = EIO;
    }
    if (base == MAP_FAILED) {
      return Status::IOErrorFromErrno("mmap snapshot " + path, err);
    }
    // Posting access at query time is random by item id; default mmap
    // readahead would fault megabytes around every touched page and
    // defeat the larger-than-RAM story (and the residency evidence).
    // Best-effort: a kernel that rejects the hint just reads ahead.
    ::madvise(base, size, MADV_RANDOM);  // syscall-ok: best-effort hint
    return std::make_shared<Mapping>(static_cast<const uint8_t*>(base), size);
  }

  Mapping(const uint8_t* base, size_t size) : base_(base), size_(size) {}
  ~Mapping() {
    ::munmap(const_cast<uint8_t*>(base_), size_);  // syscall-ok: destructor
  }
  Mapping(const Mapping&) = delete;
  Mapping& operator=(const Mapping&) = delete;

  const uint8_t* base() const { return base_; }
  size_t size() const { return size_; }

  size_t ResidentBytes() const {
#ifdef __linux__
    const size_t pages = (size_ + kSnapshotPageSize - 1) / kSnapshotPageSize;
    std::vector<unsigned char> residency(pages);
    if (::mincore(const_cast<uint8_t*>(base_), size_, residency.data()) !=
        0) {
      return 0;
    }
    size_t resident = 0;
    for (const unsigned char page : residency) {
      if ((page & 1u) != 0) ++resident;
    }
    return resident * kSnapshotPageSize;
#else
    return 0;
#endif
  }

 private:
  const uint8_t* base_;
  size_t size_;
};

size_t StoreSnapshot::mapped_bytes() const { return mapping_->size(); }

size_t StoreSnapshot::ResidentBytes() const {
  return mapping_->ResidentBytes();
}

namespace {

/// Validated view of one mapped section.
template <typename T>
Result<std::span<const T>> SectionSpan(const uint8_t* base, size_t file_size,
                                       const SnapshotSection& section,
                                       uint32_t expected_id) {
  if (section.id != expected_id || section.reserved != 0) {
    return Status::InvalidArgument("snapshot section table id mismatch");
  }
  if ((section.offset % kSnapshotPageSize) != 0) {
    return Status::InvalidArgument("snapshot section offset misaligned");
  }
  if (section.offset > file_size ||
      section.size > file_size - section.offset) {
    return Status::InvalidArgument("snapshot section outside the file");
  }
  if ((section.size % sizeof(T)) != 0) {
    return Status::InvalidArgument("snapshot section size not a multiple "
                                   "of its element size");
  }
  return std::span<const T>(
      reinterpret_cast<const T*>(base + section.offset),
      static_cast<size_t>(section.size / sizeof(T)));
}

}  // namespace

Result<StoreSnapshot> OpenStoreSnapshot(const std::string& path) {
  auto mapping_result = StoreSnapshot::Mapping::Open(path);
  if (!mapping_result.ok()) return mapping_result.status();
  std::shared_ptr<StoreSnapshot::Mapping> mapping =
      std::move(mapping_result).ValueOrDie();
  const uint8_t* base = mapping->base();
  const size_t file_size = mapping->size();

  if (file_size < sizeof(SnapshotHeader) +
                      kSnapshotSectionCount * sizeof(SnapshotSection)) {
    return Status::InvalidArgument("snapshot truncated before the header");
  }
  SnapshotHeader header;
  std::memcpy(&header, base, sizeof(header));
  if (std::memcmp(header.magic, kSnapshotMagic, sizeof(header.magic)) != 0) {
    return Status::InvalidArgument("not a snapshot file (bad magic)");
  }
  if (header.version != kSnapshotVersion) {
    return Status::InvalidArgument("unsupported snapshot version");
  }
  if (header.section_count != kSnapshotSectionCount) {
    return Status::InvalidArgument("unexpected snapshot section count");
  }
  if (header.byte_order != kSnapshotByteOrder) {
    return Status::InvalidArgument(
        "snapshot byte order differs from this machine's (snapshots are "
        "host-endian cache files, not an interchange format)");
  }
  if (header.layout != kSnapshotLayout) {
    return Status::InvalidArgument(
        "snapshot element layout differs from this build's (word size or "
        "struct layout mismatch)");
  }
  if (header.k == 0 || header.num_rankings == 0) {
    return Status::InvalidArgument("snapshot declares an empty store");
  }
  SnapshotSection table[kSnapshotSectionCount];
  std::memcpy(table, base + sizeof(header), sizeof(table));
  if (SnapshotChecksum(table, sizeof(table)) != header.directory_checksum) {
    return Status::InvalidArgument("snapshot section table checksum "
                                   "mismatch");
  }

  auto items = SectionSpan<ItemId>(base, file_size, table[0],
                                   SnapshotSection::kItems);
  if (!items.ok()) return items.status();
  auto sorted_items = SectionSpan<ItemId>(base, file_size, table[1],
                                          SnapshotSection::kSortedItems);
  if (!sorted_items.ok()) return sorted_items.status();
  auto sorted_ranks = SectionSpan<Rank>(base, file_size, table[2],
                                        SnapshotSection::kSortedRanks);
  if (!sorted_ranks.ok()) return sorted_ranks.status();
  auto list_metas = SectionSpan<CompressedListMeta>(
      base, file_size, table[3], SnapshotSection::kListMetas);
  if (!list_metas.ok()) return list_metas.status();
  auto block_metas = SectionSpan<CompressedBlockMeta>(
      base, file_size, table[4], SnapshotSection::kBlockMetas);
  if (!block_metas.ok()) return block_metas.status();
  auto inline_entries = SectionSpan<RankingId>(
      base, file_size, table[5], SnapshotSection::kInlineEntries);
  if (!inline_entries.ok()) return inline_entries.status();
  auto byte_stream = SectionSpan<uint8_t>(base, file_size, table[6],
                                          SnapshotSection::kByteStream);
  if (!byte_stream.ok()) return byte_stream.status();
  auto aug_list_metas = SectionSpan<CompressedListMeta>(
      base, file_size, table[7], SnapshotSection::kAugListMetas);
  if (!aug_list_metas.ok()) return aug_list_metas.status();
  auto aug_block_metas = SectionSpan<CompressedBlockMeta>(
      base, file_size, table[8], SnapshotSection::kAugBlockMetas);
  if (!aug_block_metas.ok()) return aug_block_metas.status();
  auto aug_rank_ranges = SectionSpan<BlockRankRange>(
      base, file_size, table[9], SnapshotSection::kAugRankRanges);
  if (!aug_rank_ranges.ok()) return aug_rank_ranges.status();
  auto aug_inline_entries = SectionSpan<AugmentedEntry>(
      base, file_size, table[10], SnapshotSection::kAugInlineEntries);
  if (!aug_inline_entries.ok()) return aug_inline_entries.status();
  auto aug_byte_stream = SectionSpan<uint8_t>(
      base, file_size, table[11], SnapshotSection::kAugByteStream);
  if (!aug_byte_stream.ok()) return aug_byte_stream.status();

  // Overflow-safe n * k: a hostile header cannot wrap the cell count
  // into coincidental agreement with the section sizes.
  if (header.num_rankings > (UINT64_MAX / sizeof(ItemId)) / header.k) {
    return Status::InvalidArgument("snapshot ranking count implausibly "
                                   "large");
  }
  const uint64_t cells = header.num_rankings * header.k;
  if (items.value().size() != cells ||
      sorted_items.value().size() != cells ||
      sorted_ranks.value().size() != cells) {
    return Status::InvalidArgument("snapshot column sections do not match "
                                   "n * k");
  }
  if (list_metas.value().size() !=
      static_cast<size_t>(header.max_item) + 1) {
    return Status::InvalidArgument("snapshot list directory does not cover "
                                   "max_item");
  }

  if (aug_list_metas.value().size() !=
      static_cast<size_t>(header.max_item) + 1) {
    return Status::InvalidArgument("snapshot augmented list directory does "
                                   "not cover max_item");
  }

  auto arena = CompressedPostingArena<RankingId>::Adopt(
      list_metas.value(), block_metas.value(), inline_entries.value(),
      byte_stream.value());
  if (!arena.ok()) return arena.status();
  if (arena.value().num_entries() != header.num_arena_entries) {
    return Status::InvalidArgument("snapshot arena entry count mismatch");
  }
  auto aug_arena = CompressedPostingArena<AugmentedEntry>::Adopt(
      aug_list_metas.value(), aug_block_metas.value(),
      aug_inline_entries.value(), aug_byte_stream.value(),
      aug_rank_ranges.value());
  if (!aug_arena.ok()) return aug_arena.status();
  if (aug_arena.value().num_entries() != header.num_augmented_entries) {
    return Status::InvalidArgument("snapshot augmented arena entry count "
                                   "mismatch");
  }

  RankingStore store = RankingStore::AdoptExternal(
      header.k, static_cast<size_t>(header.num_rankings), header.max_item,
      items.value().data(), sorted_items.value().data(),
      sorted_ranks.value().data());
  CompressedInvertedIndex index = CompressedInvertedIndex::FromParts(
      std::move(arena).ValueOrDie(),
      static_cast<size_t>(header.num_rankings));
  CompressedAugmentedIndex augmented = CompressedAugmentedIndex::FromParts(
      std::move(aug_arena).ValueOrDie(),
      static_cast<size_t>(header.num_rankings));
  return StoreSnapshot(std::move(mapping), std::move(store),
                       std::move(index), std::move(augmented));
}

Status VerifySnapshotChecksums(const std::string& path) {
  FileCloser in(std::fopen(path.c_str(), "rb"));
  if (in.file == nullptr) {
    const int err = errno;
    if (err == ENOENT) {
      return Status::NotFound("cannot open snapshot: " + path);
    }
    return Status::IOErrorFromErrno("open snapshot " + path, err);
  }
  SnapshotHeader header;
  SnapshotSection table[kSnapshotSectionCount];
  if (std::fread(&header, 1, sizeof(header), in.file) != sizeof(header) ||
      std::memcmp(header.magic, kSnapshotMagic, sizeof(header.magic)) != 0 ||
      header.version != kSnapshotVersion ||
      header.section_count != kSnapshotSectionCount ||
      header.byte_order != kSnapshotByteOrder ||
      header.layout != kSnapshotLayout ||
      std::fread(table, 1, sizeof(table), in.file) != sizeof(table)) {
    return Status::InvalidArgument("snapshot header unreadable: " + path);
  }
  if (SnapshotChecksum(table, sizeof(table)) != header.directory_checksum) {
    return Status::InvalidArgument("snapshot section table checksum "
                                   "mismatch");
  }
  std::vector<uint8_t> buffer(1 << 20);
  for (const SnapshotSection& section : table) {
    if (std::fseek(in.file, static_cast<long>(section.offset), SEEK_SET) !=
        0) {
      return Status::InvalidArgument("snapshot section unreadable");
    }
    uint64_t hash = kFnvOffset;
    uint64_t remaining = section.size;
    while (remaining > 0) {
      const size_t chunk = remaining < buffer.size()
                               ? static_cast<size_t>(remaining)
                               : buffer.size();
      if (std::fread(buffer.data(), 1, chunk, in.file) != chunk) {
        return Status::InvalidArgument("snapshot section truncated");
      }
      hash = FnvUpdate(hash, buffer.data(), chunk);
      remaining -= chunk;
    }
    if (hash != section.checksum) {
      return Status::InvalidArgument("snapshot section checksum mismatch "
                                     "(section id " +
                                     std::to_string(section.id) + ")");
    }
  }
  return Status::OK();
}

}  // namespace storage
}  // namespace topk
