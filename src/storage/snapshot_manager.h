// Crash-safe snapshot generation lifecycle.
//
// WriteStoreSnapshot makes one file durable; SnapshotManager makes a
// *directory* of them a recoverable store. Each emission becomes a new
// generation file `gen-<%020u>.topksnp` (the atomic temp/rename/dirsync
// protocol lives in snapshot.cc), the newest `keep_generations` are
// retained, and recovery scans the directory, fully checksum-verifies
// candidates newest-first, quarantines anything corrupt or torn
// (renamed to `<name>.bad` + a `<name>.bad.reason` text file so an
// operator can see why), sweeps orphaned `.tmp` leftovers from crashed
// writers, and opens the newest generation that proves valid. Because
// the writer never publishes a file until it is fully fsynced, a clean
// run quarantines nothing — storage_crash_test asserts both directions
// (recovery after SIGKILL at every write failpoint, zero quarantine
// false positives without faults).
//
// Synchronization: externally synchronized like the rest of the storage
// layer — MutableStore serializes emissions through its single
// merge-in-flight slot; concurrent OpenNewestValid against a writer is
// safe (it only ever sees fully published generations) but two
// concurrent writers on one directory are not supported.

#ifndef TOPK_STORAGE_SNAPSHOT_MANAGER_H_
#define TOPK_STORAGE_SNAPSHOT_MANAGER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/statistics.h"
#include "core/status.h"
#include "storage/snapshot.h"

namespace topk {
namespace storage {

struct SnapshotManagerOptions {
  /// Newest generations retained after a successful write (>= 1).
  size_t keep_generations = 3;
};

/// A successfully recovered generation.
struct OpenedSnapshot {
  uint64_t generation = 0;
  std::string path;
  StoreSnapshot snapshot;
};

class SnapshotManager {
 public:
  explicit SnapshotManager(std::string directory,
                           SnapshotManagerOptions options = {});

  const std::string& directory() const { return directory_; }

  /// Emits the next generation (max existing + 1) and prunes old ones.
  /// Creates the directory on first use. Failures leave prior
  /// generations untouched.
  Status WriteSnapshot(
      const RankingStore& store,
      const CompressedPostingArena<RankingId>& arena,
      const CompressedPostingArena<AugmentedEntry>& augmented_arena);
  /// Convenience overload building the augmented arena at write time.
  Status WriteSnapshot(const RankingStore& store,
                       const CompressedPostingArena<RankingId>& arena);

  /// Startup recovery: sweep orphans, then walk generations newest-first
  /// verifying full payload checksums; corrupt/torn files are
  /// quarantined (and ticked as kSnapshotsQuarantined) and the next
  /// older generation is tried. NotFound when no valid generation
  /// exists.
  Result<OpenedSnapshot> OpenNewestValid(Statistics* stats = nullptr);

  /// Published (non-quarantined) generations, ascending.
  std::vector<uint64_t> ListGenerations() const;
  /// Quarantined snapshot files currently in the directory.
  size_t QuarantinedCount() const;
  /// Removes `.tmp` leftovers from writers that died mid-emission.
  void SweepOrphans();

  static std::string GenerationFileName(uint64_t generation);
  std::string GenerationPath(uint64_t generation) const;

 private:
  Status EnsureDirectory();
  void PruneOldGenerations();
  void Quarantine(const std::string& path, const std::string& reason,
                  Statistics* stats);

  std::string directory_;
  SnapshotManagerOptions options_;
};

}  // namespace storage
}  // namespace topk

#endif  // TOPK_STORAGE_SNAPSHOT_MANAGER_H_
