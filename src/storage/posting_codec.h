// Block-level posting codecs: delta + group-varint over fixed-size
// blocks, one codec per posting entry type.
//
// A compressed posting list is a run of blocks of up to kBlockEntries
// entries. Each block's skip metadata (first id, last id, entry count,
// byte offset) lives uncompressed in the arena's block-meta array — a
// range consumer can discard a whole block on [first_id, last_id]
// without touching the byte stream — while the payload encodes:
//
//   RankingId lists    the count-1 id deltas (ids strictly ascending
//                      within a list, so deltas are >= 1 and small for
//                      the frequent items that dominate entry volume);
//   AugmentedEntry     the interleaved sequence rank0, delta1, rank1,
//   lists              delta2, rank2, ... (2*count - 1 values; ranks
//                      are < k and encode in one byte each).
//
// Both directions are exact inverses for any id-ascending input; the
// fuzz round-trip in tests/storage_compress_test.cc hammers that with
// printed failing seeds. Decoders write into caller-owned, pre-sized
// buffers and never allocate (`decode-noalloc` rule in
// scripts/check_invariants.py); a malformed stream makes them return
// false instead of reading past the block's byte range.
//
// Each decoder exists twice: a *Scalar reference (the plain group loop,
// compiled in every build) and the public dispatching name, which under
// a SIMD build routes the byte stream through the shuffle-table decode
// and vectorized delta prefix sum of storage/varint_simd.h. The two are
// bit-identical — same values, same wraparound, same truncation
// failures — pinned per length and per fuzzed stream by
// tests/storage_simd_decode_test.cc and benchmarked (GB/s, entries/ns)
// by the storage bench's decode_throughput rows.

#ifndef TOPK_STORAGE_POSTING_CODEC_H_
#define TOPK_STORAGE_POSTING_CODEC_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/posting_entry.h"
#include "core/status.h"
#include "core/types.h"
#include "storage/group_varint.h"
#include "storage/varint_simd.h"

namespace topk {
namespace storage {

/// Entries per compressed block. 128 keeps the per-block metadata
/// overhead at 16/128 = 0.125 bytes/entry while a block decode still
/// fits comfortably in L1.
inline constexpr uint32_t kBlockEntries = 128;

/// Appends the payload of one RankingId block (`entries` ascending,
/// size 1..kBlockEntries) to `bytes`. The first id is NOT encoded — it
/// rides uncompressed in the block metadata.
inline void EncodeIdBlock(std::span<const RankingId> entries,
                          std::vector<uint8_t>* bytes) {
  TOPK_DCHECK(!entries.empty() && entries.size() <= kBlockEntries);
  uint32_t deltas[kBlockEntries];
  for (size_t i = 1; i < entries.size(); ++i) {
    TOPK_DCHECK(entries[i] > entries[i - 1]);
    deltas[i - 1] = entries[i] - entries[i - 1];
  }
  if (entries.size() > 1) {
    GroupVarintEncode(deltas, entries.size() - 1, bytes);
  }
}

/// Scalar reference decode of one RankingId block of `count` entries
/// into `out` (pre-sized by the caller). Returns false without
/// completing on a malformed stream. No allocation.
inline bool DecodeIdBlockScalar(uint32_t first_id, uint32_t count,
                                const uint8_t* begin, const uint8_t* end,
                                RankingId* out) {
  TOPK_DCHECK(count >= 1 && count <= kBlockEntries);
  out[0] = first_id;
  uint32_t previous = first_id;
  uint32_t group[4];
  size_t produced = 1;
  while (produced < count) {
    const size_t m = count - produced < 4 ? count - produced : 4;
    begin = GroupVarintDecodeGroup(begin, end, m, group);
    if (begin == nullptr) return false;
    for (size_t i = 0; i < m; ++i) {
      previous += group[i];
      out[produced + i] = previous;
    }
    produced += m;
  }
  return true;
}

/// Decodes one RankingId block of `count` entries into `out` (pre-sized
/// by the caller); bit-identical to DecodeIdBlockScalar. Under a SIMD
/// build the deltas land in `out` through the shuffle-table decode and
/// become absolute ids via the vectorized prefix sum, in place. Returns
/// false on a malformed stream. No allocation.
inline bool DecodeIdBlock(uint32_t first_id, uint32_t count,
                          const uint8_t* begin, const uint8_t* end,
                          RankingId* out) {
  TOPK_DCHECK(count >= 1 && count <= kBlockEntries);
  out[0] = first_id;
  if (count == 1) return true;
  if (DecodeValuesSimd(begin, end, count - 1, out + 1) == nullptr) {
    return false;
  }
  DeltaPrefixSumInPlace(out + 1, count - 1, first_id);
  return true;
}

/// Appends the payload of one AugmentedEntry block (ids ascending) to
/// `bytes`: rank0, then (delta_i, rank_i) per subsequent entry.
inline void EncodeAugmentedBlock(std::span<const AugmentedEntry> entries,
                                 std::vector<uint8_t>* bytes) {
  TOPK_DCHECK(!entries.empty() && entries.size() <= kBlockEntries);
  uint32_t values[2 * kBlockEntries];
  size_t count = 0;
  values[count++] = entries[0].rank;
  for (size_t i = 1; i < entries.size(); ++i) {
    TOPK_DCHECK(entries[i].id > entries[i - 1].id);
    values[count++] = entries[i].id - entries[i - 1].id;
    values[count++] = entries[i].rank;
  }
  GroupVarintEncode(values, count, bytes);
}

/// Scalar reference decode of one AugmentedEntry block of `count`
/// entries into `out` (pre-sized). Returns false on a malformed stream.
/// No allocation.
inline bool DecodeAugmentedBlockScalar(uint32_t first_id, uint32_t count,
                                       const uint8_t* begin,
                                       const uint8_t* end,
                                       AugmentedEntry* out) {
  TOPK_DCHECK(count >= 1 && count <= kBlockEntries);
  uint32_t values[2 * kBlockEntries];
  const size_t total = 2 * static_cast<size_t>(count) - 1;
  size_t decoded = 0;
  while (decoded < total) {
    const size_t m = total - decoded < 4 ? total - decoded : 4;
    begin = GroupVarintDecodeGroup(begin, end, m, values + decoded);
    if (begin == nullptr) return false;
    decoded += m;
  }
  out[0] = AugmentedEntry{first_id, values[0]};
  uint32_t previous = first_id;
  for (uint32_t i = 1; i < count; ++i) {
    previous += values[2 * i - 1];
    out[i] = AugmentedEntry{previous, values[2 * i]};
  }
  return true;
}

/// Decodes one AugmentedEntry block of `count` entries into `out`
/// (pre-sized); bit-identical to DecodeAugmentedBlockScalar. The
/// interleaved value stream decodes through the SIMD kernel; the
/// delta/rank de-interleave stays scalar (it is a fraction of the
/// varint cost). Returns false on a malformed stream. No allocation.
inline bool DecodeAugmentedBlock(uint32_t first_id, uint32_t count,
                                 const uint8_t* begin, const uint8_t* end,
                                 AugmentedEntry* out) {
  TOPK_DCHECK(count >= 1 && count <= kBlockEntries);
  uint32_t values[2 * kBlockEntries];
  const size_t total = 2 * static_cast<size_t>(count) - 1;
  if (DecodeValuesSimd(begin, end, total, values) == nullptr) return false;
  out[0] = AugmentedEntry{first_id, values[0]};
  uint32_t previous = first_id;
  for (uint32_t i = 1; i < count; ++i) {
    previous += values[2 * i - 1];
    out[i] = AugmentedEntry{previous, values[2 * i]};
  }
  return true;
}

}  // namespace storage
}  // namespace topk

#endif  // TOPK_STORAGE_POSTING_CODEC_H_
