// CompressedPostingArena: the block-compressed, mmap-adoptable twin of
// the kernel CSR PostingArena.
//
// Flat sections replace the CSR pair (entries, offsets):
//
//   lists_    one CompressedListMeta per posting list: entry count plus
//             a head cursor into either the inline tier or the block
//             metadata array (bit 31 tags the tier);
//   blocks_   one CompressedBlockMeta per block of <= kBlockEntries
//             entries: first id, last id, count, byte offset — the skip
//             metadata stays uncompressed so a range consumer can
//             discard a block on [first_id, last_id] without touching
//             the byte stream;
//   ranks_    (AugmentedEntry arenas only) one BlockRankRange per block:
//             min/max rank in the block, so a rank-windowed sweep can
//             skip blocks the same way a range consumer skips on ids;
//   inline_   raw entries of the short-list tier, concatenated: lists
//             of <= kInlineMaxEntries entries are stored uncompressed
//             (block + metadata overhead would exceed the savings) and
//             served as direct spans, zero decode;
//   bytes_    the delta + group-varint payload (storage/posting_codec.h)
//             of every block, in block order.
//
// Lists whose ids are not strictly ascending (the blocked index's
// rank-major lists) fall back to the inline tier whatever their length:
// the arena never produces wrong bytes, it just declines to compress
// what the delta codec cannot represent.
//
// Every section is a SpanArray: owned vectors when built via FromArena,
// non-owning views over an mmap'd snapshot section when adopted via
// Adopt (storage/snapshot.h). Adopt bounds-checks all metadata — list
// cursors, block counts, byte offsets — against the section sizes, so a
// hostile or truncated file fails with a Status instead of making a
// decode read outside the mapping; payload *content* is not read at
// adopt time (that would defeat the zero-copy load) and is covered by
// the snapshot's per-section checksums on demand.
//
// Decode contract: DecodeList lands in a caller-owned scratch vector
// (grow-only resize up front, then raw writes — the per-block loop
// never allocates, linted by scripts/check_invariants.py) and returns a
// span; inline lists return the stored entries directly. Decoded
// content is byte-identical to the source arena's lists, which is what
// keeps every consumer bit-exact (tests/storage_compress_test.cc).

#ifndef TOPK_STORAGE_COMPRESSED_ARENA_H_
#define TOPK_STORAGE_COMPRESSED_ARENA_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/status.h"
#include "core/types.h"
#include "kernel/posting_arena.h"
#include "storage/posting_codec.h"

namespace topk {
namespace storage {

/// Per-list directory entry (8 bytes). Bit 31 of `head` tags the inline
/// tier; the low 31 bits are an entry offset into the inline section
/// (inline lists) or a block index into the block-meta section.
struct CompressedListMeta {
  static constexpr uint32_t kInlineBit = 0x80000000u;
  uint32_t length;
  uint32_t head;
};
static_assert(sizeof(CompressedListMeta) == 8);

/// Per-block skip metadata (16 bytes, uncompressed by design).
struct CompressedBlockMeta {
  uint32_t first_id;     // first entry's id, not repeated in the payload
  uint32_t last_id;      // max id in the block (block-skip bound)
  uint32_t count;        // entries in this block, 1..kBlockEntries
  uint32_t byte_offset;  // payload start within the byte stream
};
static_assert(sizeof(CompressedBlockMeta) == 16);

/// Per-block rank bounds (4 bytes), present only for AugmentedEntry
/// arenas: the min/max rank occurring in the block, so a rank-windowed
/// sweep (the compressed augmented engine's discovery-tightened mode)
/// can discard a block on metadata alone. The bounds are conservative
/// supersets: max_rank saturates to kRankRangeUnbounded when the true
/// maximum does not fit 16 bits, which window tests must treat as
/// "+infinity" — a saturated block is never skipped on its high bound.
struct BlockRankRange {
  static constexpr uint16_t kRankRangeUnbounded = 0xFFFF;
  uint16_t min_rank;
  uint16_t max_rank;

  /// Whether every rank in the block lies outside [lo, hi] — the sound
  /// skip test (conservative under saturation in both directions).
  bool DisjointFrom(uint32_t lo, uint32_t hi) const {
    if (min_rank > hi) return true;
    return max_rank != kRankRangeUnbounded && max_rank < lo;
  }
};
static_assert(sizeof(BlockRankRange) == 4);

/// A section that is either an owned vector (build path) or a borrowed
/// view into externally owned memory (mmap adoption). Copy/move safe:
/// accessors re-derive the view from whichever storage is live.
template <typename T>
class SpanArray {
 public:
  SpanArray() = default;

  std::span<const T> span() const {
    return mapped_ != nullptr ? std::span<const T>(mapped_, mapped_size_)
                              : std::span<const T>(owned_);
  }
  const T* data() const { return span().data(); }
  size_t size() const {
    return mapped_ != nullptr ? mapped_size_ : owned_.size();
  }

  std::vector<T>* mutable_owned() {
    TOPK_DCHECK(mapped_ == nullptr);
    return &owned_;
  }

  void Adopt(const T* data, size_t size) {
    owned_.clear();
    owned_.shrink_to_fit();
    mapped_ = data;
    mapped_size_ = size;
  }

  /// Heap bytes actually held (0 for adopted sections: the mapping pays).
  size_t OwnedBytes() const { return owned_.capacity() * sizeof(T); }

 private:
  std::vector<T> owned_;
  const T* mapped_ = nullptr;
  size_t mapped_size_ = 0;
};

/// Entry types: RankingId (plain lists) and AugmentedEntry (rank-
/// augmented lists); explicit instantiations live in the .cc.
template <typename Entry>
class CompressedPostingArena {
 public:
  /// Lists of up to this many entries take the inline uncompressed tier.
  static constexpr uint32_t kInlineMaxEntries = 8;

  CompressedPostingArena() = default;

  /// Compresses every list of `arena`. Lossless for any arena; lists
  /// whose ids are not strictly ascending are stored inline verbatim.
  static CompressedPostingArena FromArena(const PostingArena<Entry>& arena);

  /// Wraps mmap'd snapshot sections (which must outlive the arena) after
  /// bounds-validating all metadata. Fails with InvalidArgument on any
  /// inconsistency instead of risking an out-of-mapping decode.
  /// `rank_ranges` is either empty (plain arenas, or augmented snapshots
  /// that never exercised the rank-window path — skipping degrades to
  /// full decode) or exactly one range per block.
  static Result<CompressedPostingArena> Adopt(
      std::span<const CompressedListMeta> lists,
      std::span<const CompressedBlockMeta> blocks,
      std::span<const Entry> inline_entries, std::span<const uint8_t> bytes,
      std::span<const BlockRankRange> rank_ranges = {});

  size_t num_lists() const { return lists_.size(); }
  size_t num_entries() const { return num_entries_; }

  size_t list_length(size_t i) const {
    return i < lists_.size() ? lists_.data()[i].length : 0;
  }

  bool is_inline(size_t i) const {
    TOPK_DCHECK(i < lists_.size());
    return (lists_.data()[i].head & CompressedListMeta::kInlineBit) != 0;
  }

  /// List `i` as a span: inline lists come straight from the inline
  /// section (no copy, no decode); block lists decode into `scratch`
  /// (grown once, reused across calls). Ids outside the directory yield
  /// an empty span, mirroring PostingArena::list.
  std::span<const Entry> DecodeList(size_t i,
                                    std::vector<Entry>* scratch) const;

  /// Decodes list `i` into `out` (pre-sized to list_length(i)); no
  /// allocation. Returns false if the payload is malformed — impossible
  /// for a FromArena build, and for adopted snapshots only when payload
  /// bytes are corrupt (run VerifySnapshotChecksums to detect that
  /// up front; decode stays memory-safe regardless).
  bool DecodeListInto(size_t i, Entry* out) const;

  /// Partial decode of list `i`: only blocks whose [first_id, last_id]
  /// intersects [id_lo, id_hi] are decoded (concatenated into `scratch`);
  /// disjoint blocks are discarded on metadata alone — their payload
  /// bytes are never read. The result is a SUPERSET of the list's
  /// entries in the id range (whole overlapping blocks; the caller
  /// filters), in list order. Inline lists come back whole, as a direct
  /// span. `skip`, when given, accounts the blocks considered/skipped.
  std::span<const Entry> DecodeBlocksInRange(size_t i, RankingId id_lo,
                                             RankingId id_hi,
                                             std::vector<Entry>* scratch,
                                             BlockSkipStats* skip) const;

  /// Partial decode of list `i` by rank window: blocks whose
  /// [min_rank, max_rank] misses [rank_lo, rank_hi] are discarded on
  /// metadata alone. Superset semantics as DecodeBlocksInRange (decoded
  /// blocks may hold out-of-window ranks; inline lists come back whole).
  /// Without a rank-range section (plain arenas, legacy adoptions) no
  /// block is skipped and the call degrades to a full decode.
  std::span<const Entry> DecodeBlocksInRankWindow(size_t i, uint32_t rank_lo,
                                                  uint32_t rank_hi,
                                                  std::vector<Entry>* scratch,
                                                  BlockSkipStats* skip) const;

  /// Compressed footprint in bytes across all sections (whether owned
  /// or mapped) — the numerator of bytes/entry.
  size_t CompressedBytes() const {
    return lists_.size() * sizeof(CompressedListMeta) +
           blocks_.size() * sizeof(CompressedBlockMeta) +
           ranks_.size() * sizeof(BlockRankRange) +
           inline_.size() * sizeof(Entry) + bytes_.size();
  }

  double BytesPerEntry() const {
    return num_entries_ == 0 ? 0.0
                             : static_cast<double>(CompressedBytes()) /
                                   static_cast<double>(num_entries_);
  }

  /// Heap bytes actually held: ~0 when adopted from a mapping.
  size_t MemoryUsage() const {
    return lists_.OwnedBytes() + blocks_.OwnedBytes() + ranks_.OwnedBytes() +
           inline_.OwnedBytes() + bytes_.OwnedBytes();
  }

  size_t num_blocks() const { return blocks_.size(); }
  size_t num_inline_lists() const { return num_inline_lists_; }

  // Section views for the snapshot writer.
  std::span<const CompressedListMeta> list_metas() const {
    return lists_.span();
  }
  std::span<const CompressedBlockMeta> block_metas() const {
    return blocks_.span();
  }
  /// One range per block for AugmentedEntry arenas built by FromArena;
  /// empty for plain arenas (and legacy adoptions without the section).
  std::span<const BlockRankRange> rank_ranges() const {
    return ranks_.span();
  }
  std::span<const Entry> inline_entries() const { return inline_.span(); }
  std::span<const uint8_t> byte_stream() const { return bytes_.span(); }

 private:
  /// Payload byte range of block `b` (blocks are laid out in block-array
  /// order, so a block ends where the next one starts).
  std::pair<const uint8_t*, const uint8_t*> BlockBytes(size_t b) const {
    const auto blocks = blocks_.span();
    const auto bytes = bytes_.span();
    const uint8_t* begin = bytes.data() + blocks[b].byte_offset;
    const uint8_t* end = b + 1 < blocks.size()
                             ? bytes.data() + blocks[b + 1].byte_offset
                             : bytes.data() + bytes.size();
    return {begin, end};
  }

  /// Shared skeleton of the partial decodes: walks list `i`'s blocks,
  /// skipping every block for which `discard(block_index)` is true
  /// without touching its payload bytes, decoding the rest into
  /// `scratch` back to back.
  template <typename DiscardFn>
  std::span<const Entry> DecodeSelectedBlocks(size_t i,
                                              std::vector<Entry>* scratch,
                                              BlockSkipStats* skip,
                                              const DiscardFn& discard) const;

  SpanArray<CompressedListMeta> lists_;
  SpanArray<CompressedBlockMeta> blocks_;
  SpanArray<BlockRankRange> ranks_;
  SpanArray<Entry> inline_;
  SpanArray<uint8_t> bytes_;
  size_t num_entries_ = 0;
  size_t num_inline_lists_ = 0;
};

}  // namespace storage
}  // namespace topk

#endif  // TOPK_STORAGE_COMPRESSED_ARENA_H_
