// Compressed rank-augmented serving: the storage-tier counterpart of the
// augmented / blocked indexes (Sections 6.2-6.3), querying straight off
// the block-compressed rank-interleaved codec.
//
// CompressedAugmentedIndex compresses the id-sorted augmented arena
// (BuildAugmentedArena); each posting entry carries the rank at which the
// item appears, so validation consumes ranks straight from the decode
// buffer instead of probing stored rankings. On top of the id-range
// partial decode shared with the plain compressed index, the arena's
// per-block BlockRankRange metadata enables a *rank-windowed* partial
// decode: the discovery-tightened window of the blocked engine
// (|rank - t| <= theta - processed_absent, DESIGN.md "Block-skipping
// sweep") discards whole 128-entry blocks on metadata alone — their
// payload bytes are never touched.
//
// CompressedAugmentedEngine sweeps the kept lists with that window,
// accumulating per-candidate {seen_sum, seen_q_cost, seen_c_cost} under
// the blocked engine's threshold-sound lower bound. When the sweep is
// *complete* (no drop, no block skipped, no early stop) the accumulator
// determines the exact distance in stream:
//
//   F = seen_sum + MaxDistance(k) - seen_q_cost - seen_c_cost
//
// (each side's absence cost is half MaxDistance minus the presence cost
// already credited), so results finalize with zero store probes and zero
// distance calls. Any skipping falls back to the batched exact validator
// over the surviving candidates — partial sums over skipped blocks can
// rule candidates out, never prove them in. Either way the results are
// bit-identical to the uncompressed engines (tests/storage_augmented_test
// pins every drop mode against FilterValidateEngine and brute force).

#ifndef TOPK_STORAGE_COMPRESSED_AUGMENTED_H_
#define TOPK_STORAGE_COMPRESSED_AUGMENTED_H_

#include <span>
#include <vector>

#include "core/posting_entry.h"
#include "core/ranking.h"
#include "core/statistics.h"
#include "core/types.h"
#include "invidx/augmented_inverted_index.h"
#include "invidx/drop_policy.h"
#include "kernel/footrule_batch.h"
#include "storage/compressed_arena.h"

namespace topk {
namespace storage {

class CompressedAugmentedIndex {
 public:
  /// Lists decode to exactly AugmentedInvertedIndex's id-sorted lists.
  static constexpr bool kIdSortedLists = true;
  /// Lists are served through DecodeList(item, scratch), not list(item).
  static constexpr bool kDecodedLists = true;
  /// Decoded entry type (selects the FilterScratch landing buffers).
  using PostingEntry = AugmentedEntry;

  CompressedAugmentedIndex() = default;

  /// Compresses an already-built augmented index's arena (rank ranges are
  /// computed per block during compression).
  static CompressedAugmentedIndex FromAugmented(
      const AugmentedInvertedIndex& augmented) {
    CompressedAugmentedIndex index;
    index.arena_ =
        CompressedPostingArena<AugmentedEntry>::FromArena(augmented.arena());
    index.num_indexed_ = augmented.num_indexed();
    return index;
  }

  /// Indexes every ranking in `store` (the intermediate CSR is dropped).
  static CompressedAugmentedIndex Build(const RankingStore& store) {
    return FromAugmented(AugmentedInvertedIndex::Build(store));
  }

  /// Wraps adopted (mmap'd) sections; see CompressedPostingArena::Adopt.
  static CompressedAugmentedIndex FromParts(
      CompressedPostingArena<AugmentedEntry> arena, size_t num_indexed) {
    CompressedAugmentedIndex index;
    index.arena_ = std::move(arena);
    index.num_indexed_ = num_indexed;
    return index;
  }

  /// Posting list for `item`, decoded into `scratch` when compressed,
  /// served directly from the inline tier otherwise.
  std::span<const AugmentedEntry> DecodeList(
      ItemId item, std::vector<AugmentedEntry>* scratch) const {
    return arena_.DecodeList(item, scratch);
  }

  /// Partial decode for an id-range sweep (superset semantics; see
  /// CompressedPostingArena::DecodeBlocksInRange).
  std::span<const AugmentedEntry> DecodeListInRange(
      ItemId item, RankingId id_lo, RankingId id_hi,
      std::vector<AugmentedEntry>* scratch, BlockSkipStats* skip) const {
    return arena_.DecodeBlocksInRange(item, id_lo, id_hi, scratch, skip);
  }

  /// Partial decode for a rank-windowed sweep: blocks whose rank range
  /// misses [rank_lo, rank_hi] are skipped on metadata alone (superset
  /// semantics; see CompressedPostingArena::DecodeBlocksInRankWindow).
  std::span<const AugmentedEntry> DecodeListInRankWindow(
      ItemId item, uint32_t rank_lo, uint32_t rank_hi,
      std::vector<AugmentedEntry>* scratch, BlockSkipStats* skip) const {
    return arena_.DecodeBlocksInRankWindow(item, rank_lo, rank_hi, scratch,
                                           skip);
  }

  size_t list_length(ItemId item) const { return arena_.list_length(item); }
  size_t num_indexed() const { return num_indexed_; }
  size_t num_entries() const { return arena_.num_entries(); }
  size_t MemoryUsage() const { return arena_.MemoryUsage(); }

  const CompressedPostingArena<AugmentedEntry>& arena() const {
    return arena_;
  }

 private:
  CompressedPostingArena<AugmentedEntry> arena_;
  size_t num_indexed_ = 0;
};

struct CompressedAugmentedOptions {
  DropMode drop = DropMode::kNone;
  /// Rank-windowed partial decode (block skip on BlockRankRange metadata).
  /// Off = every kept list decodes fully; results are identical either
  /// way, only the decode work and the skip tickers differ.
  bool block_skip = true;
};

/// Augmented F&V over the compressed index with discovery-tightened
/// rank-window block skipping and streaming exact finalization on
/// complete sweeps (see file comment).
class CompressedAugmentedEngine {
 public:
  /// `store` and `index` must outlive the engine. The store backs the
  /// exact validator on incomplete sweeps; complete sweeps never touch it.
  CompressedAugmentedEngine(const RankingStore* store,
                            const CompressedAugmentedIndex* index,
                            CompressedAugmentedOptions options = {});

  /// All rankings within raw distance `theta_raw` of the query, in
  /// ascending id order.
  std::vector<RankingId> Query(const PreparedQuery& query,
                               RawDistance theta_raw,
                               Statistics* stats = nullptr);

 private:
  struct Accumulator {
    uint32_t epoch = 0;
    bool dead = false;
    RawDistance seen_sum = 0;     // sum of |rank - t| over seen entries
    RawDistance seen_q_cost = 0;  // sum of (k - t) over lists seen in
    RawDistance seen_c_cost = 0;  // sum of (k - rank) over seen entries
  };

  const RankingStore* store_;
  const CompressedAugmentedIndex* index_;
  CompressedAugmentedOptions options_;
  std::vector<Accumulator> accs_;
  std::vector<RankingId> touched_;
  std::vector<RankingId> survivors_;  // non-dead touched ids, per query
  std::vector<AugmentedEntry> decode_;
  FootruleValidator validator_;
  uint32_t epoch_ = 0;
};

}  // namespace storage
}  // namespace topk

#endif  // TOPK_STORAGE_COMPRESSED_AUGMENTED_H_
