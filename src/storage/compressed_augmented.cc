#include "storage/compressed_augmented.h"

#include <algorithm>

namespace topk {
namespace storage {

CompressedAugmentedEngine::CompressedAugmentedEngine(
    const RankingStore* store, const CompressedAugmentedIndex* index,
    CompressedAugmentedOptions options)
    : store_(store), index_(index), options_(options) {
  accs_.resize(index_->num_indexed());
  validator_.EnsureItemCapacity(
      store->empty() ? 0 : static_cast<size_t>(store->max_item()) + 1);
}

std::vector<RankingId> CompressedAugmentedEngine::Query(
    const PreparedQuery& query, RawDistance theta_raw, Statistics* stats) {
  TOPK_DCHECK(query.k() == store_->k());
  ++epoch_;
  if (epoch_ == 0) {
    for (auto& acc : accs_) acc.epoch = 0;
    epoch_ = 1;
  }
  touched_.clear();

  const uint32_t k = query.k();
  const RankingView q = query.view();
  const std::vector<uint32_t> positions =
      SelectLists(q, theta_raw, options_.drop,
                  [this](ItemId item) { return index_->list_length(item); },
                  stats);

  // A sweep is complete when every occurrence of every candidate in every
  // query item's list was processed: no list dropped, no block skipped,
  // no early stop. Only then can the accumulator finalize exactly.
  bool complete_sweep = options_.drop == DropMode::kNone;

  RawDistance processed_absent = 0;  // over processed (kept) lists
  for (size_t pi = 0; pi < positions.size(); ++pi) {
    const uint32_t t = positions[pi];
    if (processed_absent > theta_raw) {
      // Discovery is impossible from here on (a candidate first appearing
      // now has already paid more than theta in query-side absences), and
      // existing candidates only gain contributions: stop sweeping and
      // validate survivors exactly. Account the remaining lists' blocks
      // and entries as skipped.
      for (size_t rest = pi; rest < positions.size(); ++rest) {
        const ItemId item = q[positions[rest]];
        const size_t length = index_->list_length(item);
        AddTicker(stats, Ticker::kPostingEntriesSkipped, length);
        if (length >
            CompressedPostingArena<AugmentedEntry>::kInlineMaxEntries) {
          AddTicker(stats, Ticker::kBlocksSkipped,
                    (length + kBlockEntries - 1) / kBlockEntries);
        }
      }
      complete_sweep = false;
      break;
    }
    // Discovery-tightened rank window, exactly the blocked engine's:
    // only ranks with |rank - t| <= theta - processed_absent can still
    // contribute to discovery (DESIGN.md, "Block-skipping sweep").
    const RawDistance budget = theta_raw - processed_absent;
    const uint32_t rank_lo =
        budget < t ? t - static_cast<uint32_t>(budget) : 0;
    const uint32_t rank_hi = static_cast<uint32_t>(
        std::min<RawDistance>(k > 0 ? k - 1 : 0, t + budget));

    BlockSkipStats skip;
    const std::span<const AugmentedEntry> entries =
        options_.block_skip
            ? index_->DecodeListInRankWindow(q[t], rank_lo, rank_hi,
                                             &decode_, &skip)
            : index_->DecodeList(q[t], &decode_);
    if (skip.blocks_skipped > 0) complete_sweep = false;
    AddTicker(stats, Ticker::kPostingEntriesScanned, entries.size());
    AddTicker(stats, Ticker::kPostingEntriesSkipped, skip.entries_skipped);
    AddTicker(stats, Ticker::kBlocksSkipped, skip.blocks_skipped);
    AddTicker(stats, Ticker::kBlocksDecoded,
              skip.blocks_considered - skip.blocks_skipped);

    for (const AugmentedEntry& entry : entries) {
      Accumulator& acc = accs_[entry.id];
      if (acc.epoch != epoch_) {
        acc = Accumulator{};
        acc.epoch = epoch_;
        touched_.push_back(entry.id);
      } else if (acc.dead) {
        continue;
      }
      // Decoded blocks may hold out-of-window ranks (superset decode);
      // processing them only adds true contributions.
      acc.seen_sum += entry.rank > t ? entry.rank - t : t - entry.rank;
      acc.seen_q_cost += k - t;
      acc.seen_c_cost += k - entry.rank;
      // Threshold-sound lower bound, as in BlockedEngine::QueryWindowed:
      // a kept processed list the candidate missed either proves absence
      // (cost k - t') or hides it in a skipped block whose whole rank
      // range lies outside the window, i.e. |rank - t'| > budget' >=
      // k - t' while the sweep continues (DESIGN.md proof transfers at
      // block granularity).
      const RawDistance lower =
          acc.seen_sum + processed_absent + (k - t) - acc.seen_q_cost;
      if (lower > theta_raw) {
        acc.dead = true;
        AddTicker(stats, Ticker::kPrunedByLowerBound);
      }
    }
    processed_absent += k - t;
  }

  AddTicker(stats, Ticker::kCandidates, touched_.size());
  std::vector<RankingId> results;
  if (complete_sweep) {
    // Every occurrence was processed: the accumulator determines the
    // exact distance with zero store probes (see header). Dead
    // candidates were proven above theta by the lower bound.
    const RawDistance dmax = MaxDistance(k);
    for (const RankingId id : touched_) {
      const Accumulator& acc = accs_[id];
      if (acc.dead) continue;
      const RawDistance distance =
          acc.seen_sum + dmax - acc.seen_q_cost - acc.seen_c_cost;
      if (distance <= theta_raw) results.push_back(id);
    }
    std::sort(results.begin(), results.end());
    AddTicker(stats, Ticker::kResults, results.size());
    return results;
  }

  // Incomplete sweep: partial sums can rule candidates out, never prove
  // them in — validate survivors exactly through the batched kernel.
  survivors_.clear();
  for (const RankingId id : touched_) {
    if (!accs_[id].dead) survivors_.push_back(id);
  }
  validator_.BindQuery(query.view(),
                       static_cast<size_t>(store_->max_item()) + 1);
  validator_.ValidateSpan(*store_, survivors_, theta_raw, &results, stats);
  std::sort(results.begin(), results.end());
  AddTicker(stats, Ticker::kResults, results.size());
  return results;
}

}  // namespace storage
}  // namespace topk
