// Group-varint coding of 32-bit values (the storage tier's byte codec).
//
// Classic group varint (Jeff Dean's WSDM'09 layout, the qint idiom
// RediSearch uses for its inverted blocks): values are packed in groups
// of four behind one control byte whose four 2-bit fields give each
// value's encoded length minus one (1..4 bytes, little-endian
// truncation). Against plain varint this moves all length branches into
// one table-free control-byte read per group, so decode is a short
// dependency chain of unaligned loads and masks.
//
// A group may be partial (1..4 values): the control byte keeps its four
// fields, unused fields are zero, and only the used values' payload
// bytes are emitted — the stream is self-terminating given the value
// count, which the posting block metadata always carries.
//
// Encode appends to a caller-owned byte vector (build path, allocation
// fine); decode reads through raw pointers against a hard stream end and
// never allocates — the contract scripts/check_invariants.py lints for
// every decode path in src/storage/.

#ifndef TOPK_STORAGE_GROUP_VARINT_H_
#define TOPK_STORAGE_GROUP_VARINT_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

#include "core/status.h"

namespace topk {
namespace storage {

/// Encoded payload length of one value in bytes (1..4): the smallest
/// little-endian truncation that round-trips.
inline uint32_t GroupVarintByteLength(uint32_t value) {
  // bit_width(0) == 0; force at least one byte.
  return (static_cast<uint32_t>(std::bit_width(value | 1u)) + 7u) / 8u;
}

/// Appends one group of `m` (1..4) values to `out`: control byte, then
/// the used values' payload bytes.
inline void GroupVarintEncodeGroup(const uint32_t* values, size_t m,
                                   std::vector<uint8_t>* out) {
  TOPK_DCHECK(m >= 1 && m <= 4);
  uint8_t control = 0;
  uint8_t payload[16];
  size_t payload_size = 0;
  for (size_t i = 0; i < m; ++i) {
    const uint32_t length = GroupVarintByteLength(values[i]);
    control = static_cast<uint8_t>(control | ((length - 1u) << (2 * i)));
    std::memcpy(payload + payload_size, &values[i], length);
    payload_size += length;
  }
  out->push_back(control);
  out->insert(out->end(), payload, payload + payload_size);
}

/// Encodes `count` values as a sequence of (partial) groups.
inline void GroupVarintEncode(const uint32_t* values, size_t count,
                              std::vector<uint8_t>* out) {
  size_t i = 0;
  for (; i + 4 <= count; i += 4) GroupVarintEncodeGroup(values + i, 4, out);
  if (i < count) GroupVarintEncodeGroup(values + i, count - i, out);
}

/// Decodes one group of `m` (1..4) values from `in` into `out` and
/// returns the advanced cursor, or nullptr if the group would read past
/// `end` (corrupt stream; the caller surfaces the failure). No
/// allocation, no writes past out[m-1].
inline const uint8_t* GroupVarintDecodeGroup(const uint8_t* in,
                                             const uint8_t* end, size_t m,
                                             uint32_t* out) {
  if (in >= end) return nullptr;
  const uint8_t control = *in++;
  for (size_t i = 0; i < m; ++i) {
    const uint32_t length = ((control >> (2 * i)) & 0x3u) + 1u;
    if (static_cast<size_t>(end - in) < length) return nullptr;
    uint32_t value = 0;
    std::memcpy(&value, in, length);
    out[i] = value;
    in += length;
  }
  return in;
}

}  // namespace storage
}  // namespace topk

#endif  // TOPK_STORAGE_GROUP_VARINT_H_
