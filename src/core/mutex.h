// Annotated mutex / scoped-lock / condition-variable wrappers.
//
// The only sanctioned locking primitives in this tree. They wrap the std
// types 1:1 (zero-cost on the lock/unlock path) and carry the Clang
// thread-safety capability attributes from core/thread_annotations.h, so
// on the CI thread-safety leg (clang++ -Wthread-safety -Werror) the
// compiler proves that every TOPK_GUARDED_BY member is only touched under
// its mutex. std::mutex et al. are banned outside this header —
// scripts/check_invariants.py enforces that — because a raw std lock is
// invisible to the analysis and silently re-opens the hole the
// annotations close.
//
// Lock hierarchy and the per-subsystem contracts the annotations encode
// are recorded in DESIGN.md ("Locking order & epoch contracts").

#ifndef TOPK_CORE_MUTEX_H_
#define TOPK_CORE_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "core/thread_annotations.h"

namespace topk {

/// std::mutex with capability annotations. Also satisfies the standard
/// BasicLockable concept (lower-case lock/unlock), which is what lets
/// CondVar park on it directly via std::condition_variable_any.
class TOPK_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() TOPK_ACQUIRE() { mu_.lock(); }
  void Unlock() TOPK_RELEASE() { mu_.unlock(); }
  bool TryLock() TOPK_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // BasicLockable spelling (std naming) for std:: wait machinery.
  void lock() TOPK_ACQUIRE() { mu_.lock(); }
  void unlock() TOPK_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// RAII lock over a Mutex (the std::lock_guard replacement). Taking the
/// mutex by pointer keeps call sites greppable and rules out the classic
/// `MutexLock(mu)` temporary-that-immediately-unlocks typo.
class TOPK_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) TOPK_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() TOPK_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable bound to the annotated Mutex. Wait() must be called
/// with the mutex held (and, as always, inside a `while (!predicate)`
/// loop — the annotated API deliberately has no predicate overload, so
/// the guarded predicate reads sit in the caller where the analysis can
/// see the capability).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and reacquires `mu` before
  /// returning (so the caller's capability is unbroken around the call,
  /// which is exactly what REQUIRES expresses).
  void Wait(Mutex& mu) TOPK_REQUIRES(mu) { cv_.wait(mu); }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  // condition_variable_any works with any BasicLockable, i.e. with the
  // annotated Mutex itself — no escape to a raw std::mutex handle that
  // the analysis would lose track of.
  std::condition_variable_any cv_;
};

}  // namespace topk

#endif  // TOPK_CORE_MUTEX_H_
