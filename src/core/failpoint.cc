#include "core/failpoint.h"

#include <signal.h>
#include <unistd.h>

#include <cstdlib>

namespace topk {
namespace {

// splitmix64: tiny, high-quality mixing for the deterministic
// probability thinning (seed ^ site-hash ^ hit-index -> [0, 1)).
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

double UnitInterval(uint64_t seed, const std::string& site, uint64_t hit) {
  const uint64_t mixed = SplitMix64(seed ^ Fnv1a(site) ^ hit);
  return static_cast<double>(mixed >> 11) * 0x1.0p-53;
}

}  // namespace

FailpointRegistry& FailpointRegistry::Instance() {
  static FailpointRegistry registry;
  return registry;
}

FailpointRegistry::FailpointRegistry() {
  if (const char* env = std::getenv("TOPK_FAILPOINTS_SPEC")) {
    // Arming errors at process setup are programming mistakes in the
    // harness, not runtime conditions; fail loudly.
    const Status status = ArmFromSpecString(env);
    TOPK_DCHECK(status.ok() && "bad TOPK_FAILPOINTS_SPEC");
    (void)status;
  }
}

void FailpointRegistry::Arm(const std::string& site, FailpointSpec spec) {
  MutexLock lock(&mutex_);
  Armed armed;
  armed.spec = spec;
  armed_[site] = armed;
}

void FailpointRegistry::Disarm(const std::string& site) {
  MutexLock lock(&mutex_);
  armed_.erase(site);
}

void FailpointRegistry::DisarmAll() {
  MutexLock lock(&mutex_);
  armed_.clear();
}

void FailpointRegistry::ResetCounts() {
  MutexLock lock(&mutex_);
  hits_.clear();
  hit_order_.clear();
  for (auto& [site, armed] : armed_) {
    armed.eligible_hits = 0;
    armed.fired = 0;
  }
}

bool FailpointRegistry::ShouldFire(Armed* armed) {
  const FailpointSpec& spec = armed->spec;
  const uint64_t hit = ++armed->eligible_hits;
  if (spec.max_fires != 0 && armed->fired >= spec.max_fires) return false;
  if (hit < spec.start_hit) return false;
  const uint64_t every = spec.every == 0 ? 1 : spec.every;
  if ((hit - spec.start_hit) % every != 0) return false;
  if (spec.probability < 1.0) {
    // Site name is folded in at Arm-site granularity via the map key; use
    // the spec seed + hit for the deterministic draw.
    if (UnitInterval(spec.seed, "", hit) >= spec.probability) return false;
  }
  ++armed->fired;
  return true;
}

bool FailpointRegistry::Evaluate(const char* site) {
  FailpointAction action = FailpointAction::kError;
  bool fire = false;
  {
    MutexLock lock(&mutex_);
    const std::string key(site);
    uint64_t& count = hits_[key];
    if (count == 0) hit_order_.push_back(key);
    ++count;
    auto it = armed_.find(key);
    if (it != armed_.end() && ShouldFire(&it->second)) {
      fire = true;
      action = it->second.spec.action;
    }
  }
  if (fire && action == FailpointAction::kCrash) {
    // Simulate an abrupt process death (power loss / OOM-kill): no
    // destructors, no buffered-stdio flush, no atexit handlers.
    ::kill(::getpid(), SIGKILL);  // syscall-ok: process dies here
    ::abort();                    // unreachable; pacify noreturn analysis
  }
  return fire;
}

uint64_t FailpointRegistry::hits(const std::string& site) const {
  MutexLock lock(&mutex_);
  auto it = hits_.find(site);
  return it == hits_.end() ? 0 : it->second;
}

uint64_t FailpointRegistry::fires(const std::string& site) const {
  MutexLock lock(&mutex_);
  auto it = armed_.find(site);
  return it == armed_.end() ? 0 : it->second.fired;
}

std::vector<std::string> FailpointRegistry::SitesHit() const {
  MutexLock lock(&mutex_);
  return hit_order_;
}

Status FailpointRegistry::ArmFromSpecString(const std::string& spec) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(';', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;

    const size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("failpoint spec missing '=': " + entry);
    }
    const std::string site = entry.substr(0, eq);
    std::string rest = entry.substr(eq + 1);

    FailpointSpec parsed;
    const size_t at = rest.find('@');
    const std::string action = rest.substr(0, at);
    if (action == "error") {
      parsed.action = FailpointAction::kError;
    } else if (action == "crash") {
      parsed.action = FailpointAction::kCrash;
    } else {
      return Status::InvalidArgument("failpoint action must be error|crash: " +
                                     entry);
    }
    if (at != std::string::npos) {
      std::string sched = rest.substr(at + 1);
      // START[/EVERY][xMAX] — parse right to left.
      const size_t x = sched.find('x');
      if (x != std::string::npos) {
        parsed.max_fires = std::strtoull(sched.c_str() + x + 1, nullptr, 10);
        sched.resize(x);
      }
      const size_t slash = sched.find('/');
      if (slash != std::string::npos) {
        parsed.every = std::strtoull(sched.c_str() + slash + 1, nullptr, 10);
        sched.resize(slash);
      }
      parsed.start_hit = std::strtoull(sched.c_str(), nullptr, 10);
      if (parsed.start_hit == 0 || parsed.every == 0) {
        return Status::InvalidArgument("failpoint schedule needs START>=1 " +
                                       std::string("and EVERY>=1: ") + entry);
      }
    }
    Arm(site, parsed);
  }
  return Status::OK();
}

}  // namespace topk
