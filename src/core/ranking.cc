#include "core/ranking.h"

#include <algorithm>
#include <numeric>
#include <string>

namespace topk {

namespace {

bool HasDuplicates(std::span<const ItemId> items) {
  // k <= ~25 in every workload; the quadratic scan beats sorting a copy.
  for (size_t i = 0; i < items.size(); ++i) {
    for (size_t j = i + 1; j < items.size(); ++j) {
      if (items[i] == items[j]) return true;
    }
  }
  return false;
}

}  // namespace

Result<Ranking> Ranking::Create(std::vector<ItemId> items) {
  if (items.empty()) {
    return Status::InvalidArgument("ranking must contain at least one item");
  }
  if (HasDuplicates(items)) {
    return Status::InvalidArgument("ranking contains duplicate items");
  }
  return Ranking(std::move(items));
}

SortedRanking::SortedRanking(RankingView view) {
  const uint32_t k = view.k();
  items_.resize(k);
  ranks_.resize(k);
  // Sort (item, rank) pairs by item via an index permutation.
  std::vector<uint32_t> perm(k);
  std::iota(perm.begin(), perm.end(), 0);
  std::sort(perm.begin(), perm.end(),
            [&view](uint32_t a, uint32_t b) { return view[a] < view[b]; });
  for (uint32_t j = 0; j < k; ++j) {
    items_[j] = view[perm[j]];
    ranks_[j] = perm[j];
  }
}

RankingStore RankingStore::AdoptExternal(uint32_t k, size_t n,
                                         ItemId max_item,
                                         const ItemId* items,
                                         const ItemId* sorted_items,
                                         const Rank* sorted_ranks) {
  RankingStore store(k);
  store.size_ = n;
  store.max_item_ = max_item;
  store.external_ = true;
  store.ext_items_ = items;
  store.ext_sorted_items_ = sorted_items;
  store.ext_sorted_ranks_ = sorted_ranks;
  return store;
}

Result<RankingId> RankingStore::Add(std::span<const ItemId> items) {
  TOPK_DCHECK(!external_);
  if (items.size() != k_) {
    return Status::InvalidArgument(
        "ranking size " + std::to_string(items.size()) +
        " does not match store k=" + std::to_string(k_));
  }
  if (HasDuplicates(items)) {
    return Status::InvalidArgument("ranking contains duplicate items");
  }
  AppendRow(items);
  return static_cast<RankingId>(size_ - 1);
}

RankingId RankingStore::AddUnchecked(std::span<const ItemId> items) {
  TOPK_DCHECK(!external_);
  TOPK_DCHECK(items.size() == k_);
  TOPK_DCHECK(!HasDuplicates(items));
  AppendRow(items);
  return static_cast<RankingId>(size_ - 1);
}

void RankingStore::Reserve(size_t num_rankings) {
  const size_t cells = num_rankings * k_;
  items_.reserve(cells);
  sorted_items_.reserve(cells);
  sorted_ranks_.reserve(cells);
}

void RankingStore::AppendRow(std::span<const ItemId> items) {
  items_.insert(items_.end(), items.begin(), items.end());

  // Build the item-sorted row: pack (item, rank) into one uint64 so a
  // single sort produces both parallel arrays. Typical k (5..25) stays on
  // the stack; larger rankings (the kernel differential suites go to
  // k = 100) take the heap path instead of overrunning a fixed buffer.
  uint64_t stack_packed[64];
  std::vector<uint64_t> heap_packed;
  uint64_t* packed = stack_packed;
  if (k_ > 64) {
    heap_packed.resize(k_);
    packed = heap_packed.data();
  }
  for (uint32_t p = 0; p < k_; ++p) {
    packed[p] = (static_cast<uint64_t>(items[p]) << 32) | p;
  }
  std::sort(packed, packed + k_);
  for (uint32_t j = 0; j < k_; ++j) {
    sorted_items_.push_back(static_cast<ItemId>(packed[j] >> 32));
    sorted_ranks_.push_back(static_cast<Rank>(packed[j] & 0xffffffffULL));
  }

  for (ItemId item : items) max_item_ = std::max(max_item_, item);
  ++size_;
}

uint64_t SequenceFingerprint(std::span<const ItemId> items) {
  // Chained absorb: each step mixes the running state with the next item,
  // so position matters; seeding with the length separates prefixes.
  uint64_t h = 0x9ae16a3b2f90404full ^ items.size();
  for (const ItemId item : items) h = MixId64(h ^ MixId64(item));
  return h;
}

uint64_t ItemSetFingerprint(std::span<const ItemId> items) {
  // Commutative combine (wrapping sum of per-item mixes), finalized with
  // the set size so {0} and {} cannot collide via the zero sum.
  uint64_t sum = 0;
  for (const ItemId item : items) sum += MixId64(0x517cc1b727220a95ull ^ item);
  return MixId64(sum ^ items.size());
}

Ranking RankingStore::Materialize(RankingId id) const {
  RankingView v = view(id);
  std::vector<ItemId> items(v.items().begin(), v.items().end());
  return std::move(Ranking::Create(std::move(items))).ValueOrDie();
}

}  // namespace topk
