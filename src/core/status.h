// Minimal Status / Result types in the style of Apache Arrow and RocksDB.
//
// The library is built without exceptions on its hot paths; fallible
// construction (e.g. a ranking containing duplicate items) reports through
// Status / Result<T> instead. Internal invariants use TOPK_DCHECK.

#ifndef TOPK_CORE_STATUS_H_
#define TOPK_CORE_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace topk {

#define TOPK_DCHECK(condition) assert(condition)

/// Outcome of a fallible operation. Cheap to copy when OK (empty message).
class Status {
 public:
  enum class Code { kOk, kInvalidArgument, kNotFound, kFailedPrecondition };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code_) + ": " + message_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  static std::string CodeName(Code code) {
    switch (code) {
      case Code::kOk:
        return "OK";
      case Code::kInvalidArgument:
        return "InvalidArgument";
      case Code::kNotFound:
        return "NotFound";
      case Code::kFailedPrecondition:
        return "FailedPrecondition";
    }
    return "Unknown";
  }

  Code code_;
  std::string message_;
};

/// A Status or a value: Result<T> holds T exactly when status().ok().
template <typename T>
class Result {
 public:
  Result(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    TOPK_DCHECK(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    TOPK_DCHECK(ok());
    return *value_;
  }
  T& value() & {
    TOPK_DCHECK(ok());
    return *value_;
  }
  T&& value() && {
    TOPK_DCHECK(ok());
    return std::move(*value_);
  }

  /// Moves the value out, aborting in debug builds if not OK. Used by call
  /// sites that have already validated inputs.
  T ValueOrDie() && {
    TOPK_DCHECK(ok());
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace topk

#endif  // TOPK_CORE_STATUS_H_
