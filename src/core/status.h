// Minimal Status / Result types in the style of Apache Arrow and RocksDB.
//
// The library is built without exceptions on its hot paths; fallible
// construction (e.g. a ranking containing duplicate items) reports through
// Status / Result<T> instead. Internal invariants use TOPK_DCHECK.

#ifndef TOPK_CORE_STATUS_H_
#define TOPK_CORE_STATUS_H_

#include <cassert>
#include <cerrno>
#include <cstring>
#include <optional>
#include <string>
#include <utility>

namespace topk {

#define TOPK_DCHECK(condition) assert(condition)

/// Outcome of a fallible operation. Cheap to copy when OK (empty message).
class Status {
 public:
  enum class Code {
    kOk,
    kInvalidArgument,
    kNotFound,
    kFailedPrecondition,
    kIOError,
    kDeadlineExceeded,
    kUnavailable,
    kAborted,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  /// IOError annotated with the current errno: "<op>: <strerror> (errno N)".
  /// Capture errno into `err` BEFORE any call that may clobber it (cleanup
  /// closes/unlinks between the failing syscall and this constructor).
  static Status IOErrorFromErrno(std::string op, int err) {
    return Status(Code::kIOError, std::move(op) + ": " + std::strerror(err) +
                                      " (errno " + std::to_string(err) + ")");
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(Code::kUnavailable, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(Code::kAborted, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code_) + ": " + message_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  static std::string CodeName(Code code) {
    switch (code) {
      case Code::kOk:
        return "OK";
      case Code::kInvalidArgument:
        return "InvalidArgument";
      case Code::kNotFound:
        return "NotFound";
      case Code::kFailedPrecondition:
        return "FailedPrecondition";
      case Code::kIOError:
        return "IOError";
      case Code::kDeadlineExceeded:
        return "DeadlineExceeded";
      case Code::kUnavailable:
        return "Unavailable";
      case Code::kAborted:
        return "Aborted";
    }
    return "Unknown";
  }

  Code code_;
  std::string message_;
};

/// A Status or a value: Result<T> holds T exactly when status().ok().
template <typename T>
class Result {
 public:
  Result(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    TOPK_DCHECK(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    TOPK_DCHECK(ok());
    return *value_;
  }
  T& value() & {
    TOPK_DCHECK(ok());
    return *value_;
  }
  T&& value() && {
    TOPK_DCHECK(ok());
    return std::move(*value_);
  }

  /// Moves the value out, aborting in debug builds if not OK. Used by call
  /// sites that have already validated inputs.
  T ValueOrDie() && {
    TOPK_DCHECK(ok());
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace topk

#endif  // TOPK_CORE_STATUS_H_
