#include "core/footrule.h"

#include <cstdlib>

namespace topk {

namespace {

inline RawDistance AbsDiff(Rank x, Rank y) {
  return x > y ? x - y : y - x;
}

}  // namespace

RawDistance FootruleDistance(SortedRankingView a, SortedRankingView b) {
  TOPK_DCHECK(a.k() == b.k());
  const uint32_t k = a.k();
  RawDistance total = 0;
  uint32_t i = 0;
  uint32_t j = 0;
  while (i < k && j < k) {
    const ItemId ia = a.item(i);
    const ItemId ib = b.item(j);
    if (ia == ib) {
      total += AbsDiff(a.rank(i), b.rank(j));
      ++i;
      ++j;
    } else if (ia < ib) {
      total += k - a.rank(i);  // item only in a: |rank - l| with l = k
      ++i;
    } else {
      total += k - b.rank(j);
      ++j;
    }
  }
  for (; i < k; ++i) total += k - a.rank(i);
  for (; j < k; ++j) total += k - b.rank(j);
  return total;
}

RawDistance FootruleDistanceNaive(RankingView a, RankingView b) {
  TOPK_DCHECK(a.k() == b.k());
  const uint32_t k = a.k();
  RawDistance total = 0;
  // Items of a: matched against b or absent.
  for (Rank pa = 0; pa < k; ++pa) {
    const auto pb = b.RankOf(a[pa]);
    total += pb.has_value() ? AbsDiff(pa, *pb) : (k - pa);
  }
  // Items of b that are not in a.
  for (Rank pb = 0; pb < k; ++pb) {
    if (!a.Contains(b[pb])) total += k - pb;
  }
  return total;
}

uint64_t GeneralizedFootrule(std::span<const ItemId> a,
                             std::span<const ItemId> b, uint64_t absent_rank,
                             uint64_t first_rank) {
  auto rank_of = [first_rank](std::span<const ItemId> r, ItemId item,
                              uint64_t absent) -> uint64_t {
    for (size_t p = 0; p < r.size(); ++p) {
      if (r[p] == item) return first_rank + p;
    }
    return absent;
  };
  auto abs_diff = [](uint64_t x, uint64_t y) { return x > y ? x - y : y - x; };

  uint64_t total = 0;
  for (size_t p = 0; p < a.size(); ++p) {
    total += abs_diff(first_rank + p, rank_of(b, a[p], absent_rank));
  }
  for (size_t p = 0; p < b.size(); ++p) {
    if (rank_of(a, b[p], absent_rank) == absent_rank) {
      total += abs_diff(first_rank + p, absent_rank);
    }
  }
  return total;
}

}  // namespace topk
