// Top-k ranking model and the flat in-memory store holding a collection.
//
// A ranking of size k is a bijection from its k-item domain onto positions
// 0..k-1 (position 0 = top-ranked item); see Section 3 of the paper. The
// library keeps the whole collection in one contiguous RankingStore:
//
//   items_         n*k item ids in position order (row i = ranking i)
//   sorted_items_  the same rows with items ascending
//   sorted_ranks_  parallel ranks, so row i's pairs (sorted_items_[i*k+j],
//                  sorted_ranks_[i*k+j]) enumerate (item, rank) by item id
//
// The sorted view makes a Footrule evaluation a linear merge of two sorted
// k-arrays — no hashing, no per-call allocation — which matters because
// distance computation dominates the validation phase of every algorithm.

#ifndef TOPK_CORE_RANKING_H_
#define TOPK_CORE_RANKING_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/status.h"
#include "core/types.h"

namespace topk {

/// Non-owning view of a ranking in position order: items()[p] is the item
/// at rank p.
class RankingView {
 public:
  RankingView(const ItemId* items, uint32_t k) : items_(items), k_(k) {}

  uint32_t k() const { return k_; }
  ItemId operator[](Rank p) const {
    TOPK_DCHECK(p < k_);
    return items_[p];
  }
  std::span<const ItemId> items() const { return {items_, k_}; }

  /// Rank of `item`, or nullopt if absent. Linear scan: k is tiny (5..25).
  std::optional<Rank> RankOf(ItemId item) const {
    for (uint32_t p = 0; p < k_; ++p) {
      if (items_[p] == item) return p;
    }
    return std::nullopt;
  }
  bool Contains(ItemId item) const { return RankOf(item).has_value(); }

 private:
  const ItemId* items_;
  uint32_t k_;
};

/// Non-owning item-sorted view: items() ascending, ranks() parallel.
class SortedRankingView {
 public:
  SortedRankingView(const ItemId* items, const Rank* ranks, uint32_t k)
      : items_(items), ranks_(ranks), k_(k) {}

  uint32_t k() const { return k_; }
  std::span<const ItemId> items() const { return {items_, k_}; }
  std::span<const Rank> ranks() const { return {ranks_, k_}; }
  ItemId item(uint32_t j) const { return items_[j]; }
  Rank rank(uint32_t j) const { return ranks_[j]; }

 private:
  const ItemId* items_;
  const Rank* ranks_;
  uint32_t k_;
};

/// An owning ranking, used at API boundaries (query construction, tests).
class Ranking {
 public:
  /// Validates that `items` is duplicate-free (rankings never repeat an
  /// item, Section 1.1) and non-empty.
  static Result<Ranking> Create(std::vector<ItemId> items);

  uint32_t k() const { return static_cast<uint32_t>(items_.size()); }
  const std::vector<ItemId>& items() const { return items_; }
  RankingView view() const {
    return RankingView(items_.data(), k());
  }

 private:
  explicit Ranking(std::vector<ItemId> items) : items_(std::move(items)) {}

  std::vector<ItemId> items_;
};

/// Owning item-sorted representation of a query ranking; built once per
/// query, then shared by all index probes and distance computations.
class SortedRanking {
 public:
  explicit SortedRanking(const Ranking& ranking)
      : SortedRanking(ranking.view()) {}
  explicit SortedRanking(RankingView view);

  uint32_t k() const { return static_cast<uint32_t>(items_.size()); }
  SortedRankingView view() const {
    return SortedRankingView(items_.data(), ranks_.data(), k());
  }

 private:
  std::vector<ItemId> items_;
  std::vector<Rank> ranks_;
};

/// A query ranking prepared for processing: the position-order view (used
/// to pick posting lists by rank) plus the item-sorted view (used by the
/// distance kernel). Built once per query, shared by all algorithms.
struct PreparedQuery {
  explicit PreparedQuery(Ranking r)
      : ranking(std::move(r)), sorted(ranking) {}

  uint32_t k() const { return ranking.k(); }
  RankingView view() const { return ranking.view(); }
  SortedRankingView sorted_view() const { return sorted.view(); }

  Ranking ranking;
  SortedRanking sorted;
};

/// Order-sensitive 64-bit fingerprint of an item sequence: two sequences
/// fingerprint equal only if they list the same items in the same order
/// (up to 64-bit collisions — consumers needing certainty must compare
/// the sequences, as the serving-layer caches do). Stable across
/// platforms: built from MixId64 only.
uint64_t SequenceFingerprint(std::span<const ItemId> items);

/// Order-insensitive fingerprint of an item set: any permutation of the
/// same items fingerprints identically (commutative combine of per-item
/// mixes). The serving-layer candidate cache buckets by this — plain-F&V
/// candidate sets depend only on the query's item set, not its order.
uint64_t ItemSetFingerprint(std::span<const ItemId> items);

/// Contiguous storage for a collection of equal-size rankings.
///
/// Two storage modes share one read interface: the default *owned* mode
/// holds the three column arrays in vectors and accepts Add(); the
/// *external* mode (AdoptExternal) wraps caller-owned immutable memory —
/// an mmap'd snapshot section (storage/snapshot.h) — so a collection
/// loads zero-copy and pages on demand. External stores are frozen:
/// Add/AddUnchecked on them is a contract violation (debug-checked).
class RankingStore {
 public:
  explicit RankingStore(uint32_t k) : k_(k) { TOPK_DCHECK(k > 0); }

  /// Wraps externally owned column arrays (each `n * k` elements, laid
  /// out exactly as the owned vectors would be). The backing memory must
  /// outlive the store; the caller vouches for the rows being valid
  /// rankings with items <= max_item (the snapshot loader's checksums
  /// stand in for the Add-path validation).
  static RankingStore AdoptExternal(uint32_t k, size_t n, ItemId max_item,
                                    const ItemId* items,
                                    const ItemId* sorted_items,
                                    const Rank* sorted_ranks);

  /// Whether this store wraps external (frozen, typically mmap'd) memory.
  bool external() const { return external_; }

  /// Appends a ranking; rejects wrong sizes and duplicate items.
  /// Returns the id (insertion position) of the new ranking on success.
  Result<RankingId> Add(std::span<const ItemId> items);

  /// Appends a pre-validated ranking (generators validate by construction).
  /// Duplicate-freeness is still checked in debug builds.
  RankingId AddUnchecked(std::span<const ItemId> items);

  /// Pre-allocates room for `num_rankings` rows. Bulk producers that know
  /// the final size (shard builders, deserialization) call this once to
  /// avoid growth reallocations of the three parallel arrays.
  void Reserve(size_t num_rankings);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  uint32_t k() const { return k_; }

  /// Largest item id stored so far (0 when empty); inverted indexes size
  /// their dense list directories with this.
  ItemId max_item() const { return max_item_; }

  RankingView view(RankingId id) const {
    TOPK_DCHECK(id < size_);
    return RankingView(items_data() + static_cast<size_t>(id) * k_, k_);
  }

  /// The whole position-order item matrix, row `id` at [id*k, (id+1)*k):
  /// the vectorized validate kernel gathers candidate rows straight out
  /// of it instead of staging per-row views.
  std::span<const ItemId> flat_items() const {
    return {items_data(), size_ * k_};
  }
  /// Whole sorted columns (row `id` at [id*k, (id+1)*k)), for bulk
  /// consumers: the snapshot writer persists them verbatim.
  std::span<const ItemId> flat_sorted_items() const {
    return {sorted_items_data(), size_ * k_};
  }
  std::span<const Rank> flat_sorted_ranks() const {
    return {sorted_ranks_data(), size_ * k_};
  }
  SortedRankingView sorted(RankingId id) const {
    TOPK_DCHECK(id < size_);
    const size_t off = static_cast<size_t>(id) * k_;
    return SortedRankingView(sorted_items_data() + off,
                             sorted_ranks_data() + off, k_);
  }

  /// Copies ranking `id` out into an owning Ranking.
  Ranking Materialize(RankingId id) const;

  /// Heap bytes held by the store (for Table 6 style reporting). An
  /// external (mmap-backed) store holds ~none: the mapping pays, and
  /// pages in on demand.
  size_t MemoryUsage() const {
    return items_.capacity() * sizeof(ItemId) +
           sorted_items_.capacity() * sizeof(ItemId) +
           sorted_ranks_.capacity() * sizeof(Rank);
  }

 private:
  void AppendRow(std::span<const ItemId> items);

  // Live column bases: the owned vectors by default, the adopted
  // external arrays otherwise. Branching here (predictable, per-row not
  // per-entry) keeps the default copy/move of the vectors correct — no
  // cached pointers to refresh.
  const ItemId* items_data() const {
    return external_ ? ext_items_ : items_.data();
  }
  const ItemId* sorted_items_data() const {
    return external_ ? ext_sorted_items_ : sorted_items_.data();
  }
  const Rank* sorted_ranks_data() const {
    return external_ ? ext_sorted_ranks_ : sorted_ranks_.data();
  }

  uint32_t k_;
  size_t size_ = 0;
  ItemId max_item_ = 0;
  std::vector<ItemId> items_;
  std::vector<ItemId> sorted_items_;
  std::vector<Rank> sorted_ranks_;
  bool external_ = false;
  const ItemId* ext_items_ = nullptr;
  const ItemId* ext_sorted_items_ = nullptr;
  const Rank* ext_sorted_ranks_ = nullptr;
};

}  // namespace topk

#endif  // TOPK_CORE_RANKING_H_
