// Deadlines and cooperative cancellation for query serving.
//
// A query carries a Deadline (absolute steady-clock point) and optionally
// a caller-owned CancelToken; the serving layers fold both into a
// QueryControl that kernel loops poll at block/batch granularity. The
// poll is amortized: the common case is a decrement-and-compare (no clock
// read), with the actual steady_clock::now() taken once every kStride
// polls — which is what keeps the uncancelled hot path within the <2%
// overhead budget BENCH_robustness.json tracks.
//
// Contract (see DESIGN.md "Failure model"): a loop that observes
// ShouldStop() == true abandons its remaining work and returns with
// whatever partial state it has; the owning layer maps the stop to
// Status::DeadlineExceeded (deadline) or Status::Aborted (cancel) and
// MUST NOT publish or cache the partial answer.

#ifndef TOPK_CORE_DEADLINE_H_
#define TOPK_CORE_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>

namespace topk {

/// Absolute point in time a query must finish by. Default-constructed
/// deadlines are infinite (never expire) and skip the clock entirely.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() : infinite_(true) {}

  static Deadline Infinite() { return Deadline(); }
  static Deadline At(Clock::time_point tp) { return Deadline(tp); }
  static Deadline After(std::chrono::nanoseconds budget) {
    return Deadline(Clock::now() + budget);
  }
  static Deadline AfterMillis(double ms) {
    return After(std::chrono::nanoseconds(
        static_cast<int64_t>(ms * 1e6)));
  }

  bool infinite() const { return infinite_; }
  bool Expired() const { return !infinite_ && Clock::now() >= at_; }
  /// Remaining budget in milliseconds; negative when already expired,
  /// +inf when infinite (callers use it for retry-after hints).
  double RemainingMillis() const {
    if (infinite_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double, std::milli>(at_ - Clock::now())
        .count();
  }

 private:
  explicit Deadline(Clock::time_point at) : at_(at), infinite_(false) {}

  Clock::time_point at_{};
  bool infinite_;
};

/// Caller-owned cancellation flag; Cancel() may race with queries reading
/// it (that is the point). One token may cover many queries.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Per-query cooperative stop probe: deadline + optional cancel token,
/// with the amortized clock read described in the header comment. One
/// QueryControl serves exactly one query on one thread at a time (the
/// parallel runner gives each shard task its own); the sticky `stopped_`
/// latch means a loop nest can re-poll freely after a stop.
class QueryControl {
 public:
  /// Clock reads happen once per kStride polls ("a compare per block").
  static constexpr uint32_t kStride = 64;

  QueryControl() = default;
  explicit QueryControl(Deadline deadline,
                        const CancelToken* cancel = nullptr)
      : deadline_(deadline), cancel_(cancel) {}

  /// Amortized cooperative check. Kernel loops call this once per block /
  /// candidate batch; true means abandon remaining work now. The first
  /// poll on a fresh control is precise (reads the clock), so an entry
  /// check catches an already-expired deadline regardless of kStride.
  bool ShouldStop() {
    if (stopped_) return true;
    if (cancel_ != nullptr && cancel_->cancelled()) {
      cancelled_ = true;
      stopped_ = true;
      return true;
    }
    if (deadline_.infinite()) return false;
    if (--countdown_ > 0) return false;
    countdown_ = kStride;
    if (deadline_.Expired()) stopped_ = true;
    return stopped_;
  }

  /// Non-amortized check (reads the clock) for entry/exit points where a
  /// precise answer matters more than the per-poll cost.
  bool ExpiredNow() {
    if (!stopped_ && deadline_.Expired()) stopped_ = true;
    return stopped_;
  }

  /// Whether a stop has been observed (sticky).
  bool stopped() const { return stopped_; }
  /// True when the stop came from the cancel token rather than the clock.
  bool cancelled() const { return cancelled_; }
  const Deadline& deadline() const { return deadline_; }

 private:
  Deadline deadline_ = Deadline::Infinite();
  const CancelToken* cancel_ = nullptr;
  /// Starts at 1, not kStride: the FIRST poll reads the clock, so the
  /// serving layers' entry checks reject an already-expired query
  /// deterministically however little work it would have done; only the
  /// steady-state polls amortize.
  uint32_t countdown_ = 1;
  bool stopped_ = false;
  bool cancelled_ = false;
};

}  // namespace topk

#endif  // TOPK_CORE_DEADLINE_H_
