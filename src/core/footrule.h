// Spearman's Footrule distance for top-k lists (Section 3 of the paper).
//
// Following Fagin et al., items absent from a ranking receive the
// artificial rank l = k (ranks run 0..k-1), which makes the Footrule
// adaptation a metric over equal-size top-k lists. The raw distance is
//
//   F(a, b) = sum over items i in D_a union D_b of |rank_a(i) - rank_b(i)|
//
// with rank_x(i) = k when i is not in x. Its range is [0, k*(k+1)].

#ifndef TOPK_CORE_FOOTRULE_H_
#define TOPK_CORE_FOOTRULE_H_

#include <cstdint>
#include <span>

#include "core/ranking.h"
#include "core/types.h"

namespace topk {

/// Raw Footrule distance via a linear merge of two item-sorted views.
/// Both views must have the same k. O(k) time, branch-light; this is the
/// library's hot distance kernel.
RawDistance FootruleDistance(SortedRankingView a, SortedRankingView b);

/// Reference O(k^2) implementation over position-order views; exists for
/// differential testing and the micro-benchmark justifying the merge kernel.
RawDistance FootruleDistanceNaive(RankingView a, RankingView b);

/// Generalized Footrule used to cross-check the paper's worked example
/// (Section 3): rankings may have different sizes, ranks start at
/// `first_rank` (the paper's example is 1-based), and absent items get rank
/// `absent_rank` (the paper's example uses l = 6).
uint64_t GeneralizedFootrule(std::span<const ItemId> a,
                             std::span<const ItemId> b, uint64_t absent_rank,
                             uint64_t first_rank);

}  // namespace topk

#endif  // TOPK_CORE_FOOTRULE_H_
