// Deterministic fault-injection sites, in the spirit of TiKV/RocksDB
// failpoints.
//
// A fallible boundary marks itself with `if (TOPK_FAILPOINT("site.name"))`
// and handles the `true` branch as if the underlying operation had failed
// (error mode) — crash mode never returns: the registry SIGKILLs the
// process at the site, which is how tests/storage_crash_test.cc proves the
// snapshot protocol is torn-write safe. In normal builds the macro expands
// to `false` and every site folds away to nothing; configuring with
// -DTOPK_FAILPOINTS=ON compiles the registry probe in (the `failpoints`
// and TSan CI legs build this way).
//
// Schedules are deterministic: a site armed with {start_hit, every,
// max_fires} fires on hit numbers start_hit, start_hit+every, ... for at
// most max_fires firings, optionally thinned by a seeded pseudo-random
// probability (splitmix64 over (seed, site, hit) — same seed, same
// firings, every run). Hit counts are recorded for every evaluated site
// whether or not it is armed, so a test can trace one clean run to learn
// which sites a code path crosses, then re-run once per site in crash
// mode.

#ifndef TOPK_CORE_FAILPOINT_H_
#define TOPK_CORE_FAILPOINT_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/mutex.h"
#include "core/status.h"
#include "core/thread_annotations.h"

namespace topk {

/// What an armed site does when its schedule fires.
enum class FailpointAction {
  kError,  // Evaluate() returns true; the site simulates an I/O error
  kCrash,  // Evaluate() SIGKILLs the process (never returns)
};

/// Deterministic firing schedule for one site. Hits are 1-based.
struct FailpointSpec {
  FailpointAction action = FailpointAction::kError;
  uint64_t start_hit = 1;   // first hit eligible to fire
  uint64_t every = 1;       // then every `every`-th hit after it
  uint64_t max_fires = 0;   // 0 = unlimited; 1 = one-shot
  double probability = 1.0; // deterministic thinning in [0, 1]
  uint64_t seed = 0;        // drives the thinning hash
};

/// Process-wide registry of armed failpoints. All methods are
/// thread-safe; Evaluate is called from hot-ish paths but only in
/// TOPK_FAILPOINTS builds (release builds never reach it).
class FailpointRegistry {
 public:
  static FailpointRegistry& Instance();

  void Arm(const std::string& site, FailpointSpec spec) TOPK_EXCLUDES(mutex_);
  void Disarm(const std::string& site) TOPK_EXCLUDES(mutex_);
  void DisarmAll() TOPK_EXCLUDES(mutex_);
  /// Clears hit/fire counters (armed specs stay armed, their per-spec
  /// eligible-hit counters restart).
  void ResetCounts() TOPK_EXCLUDES(mutex_);

  /// Records a hit on `site`; returns true iff an armed error-mode
  /// schedule fires. Crash-mode firings SIGKILL instead of returning.
  bool Evaluate(const char* site) TOPK_EXCLUDES(mutex_);

  /// Total Evaluate() calls seen for `site` since the last ResetCounts.
  uint64_t hits(const std::string& site) const TOPK_EXCLUDES(mutex_);
  /// Times an armed schedule on `site` actually fired.
  uint64_t fires(const std::string& site) const TOPK_EXCLUDES(mutex_);
  /// Every site evaluated at least once since the last ResetCounts, in
  /// first-hit order (the crash test's trace of a clean run).
  std::vector<std::string> SitesHit() const TOPK_EXCLUDES(mutex_);

  /// Parses and arms a ';'-separated spec list, e.g.
  ///   "storage.snapshot.fsync=crash@2;io.write=error@1/3x5"
  /// Grammar per entry: site=ACTION@START[/EVERY][xMAX], ACTION in
  /// {error, crash}. Also applied once from $TOPK_FAILPOINTS_SPEC on
  /// first Instance() use, so a child process can arm itself pre-main.
  Status ArmFromSpecString(const std::string& spec) TOPK_EXCLUDES(mutex_);

 private:
  struct Armed {
    FailpointSpec spec;
    uint64_t eligible_hits = 0;  // hits seen while this spec was armed
    uint64_t fired = 0;
  };

  FailpointRegistry();

  bool ShouldFire(Armed* armed) TOPK_REQUIRES(mutex_);

  mutable Mutex mutex_;
  std::unordered_map<std::string, Armed> armed_ TOPK_GUARDED_BY(mutex_);
  std::unordered_map<std::string, uint64_t> hits_ TOPK_GUARDED_BY(mutex_);
  std::vector<std::string> hit_order_ TOPK_GUARDED_BY(mutex_);
};

/// True when this build compiles failpoint probes in.
constexpr bool FailpointsCompiledIn() {
#if defined(TOPK_FAILPOINTS)
  return true;
#else
  return false;
#endif
}

}  // namespace topk

#if defined(TOPK_FAILPOINTS)
#define TOPK_FAILPOINT(site) \
  (::topk::FailpointRegistry::Instance().Evaluate(site))
#else
#define TOPK_FAILPOINT(site) (false)
#endif

#endif  // TOPK_CORE_FAILPOINT_H_
