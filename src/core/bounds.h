// Distance bounds driving the paper's inverted-index optimizations.
//
// Section 6.1: with an overlap of w items between a query and a ranking,
// the smallest possible Footrule distance is achieved when the w common
// items coincide in the top-w positions of both lists, leaving the k-w
// remaining items of each side to pay their absence cost. That minimum is
// L(k, w) = (k-w)*(k-w+1). Inverting it yields the smallest overlap any
// result can have, which in turn bounds how many posting lists a query
// must touch (the +Drop family of algorithms).

#ifndef TOPK_CORE_BOUNDS_H_
#define TOPK_CORE_BOUNDS_H_

#include <cstdint>

#include "core/types.h"

namespace topk {

/// L(k, w): minimum possible raw Footrule distance between two size-k
/// rankings sharing exactly `overlap` items. L(k, k) = 0, L(k, 0) = k(k+1).
RawDistance MinDistanceForOverlap(uint32_t k, uint32_t overlap);

/// Smallest overlap a ranking within raw distance `theta_raw` of the query
/// can have: the minimum w with L(k, w) <= theta_raw. Computed exactly over
/// the integers (the paper's closed form w = floor(0.5*(1+2k-sqrt(1+4t)))
/// can undershoot by one when sqrt lands between integers; ours dominates
/// it and is verified against brute force in the tests).
uint32_t MinOverlap(uint32_t k, RawDistance theta_raw);

/// The paper's closed-form overlap bound, kept for conformance testing.
/// Guaranteed <= MinOverlap (i.e. never incorrect, possibly conservative).
uint32_t MinOverlapPaperFormula(uint32_t k, RawDistance theta_raw);

/// Number of posting lists that must be accessed so no candidate with
/// overlap >= MinOverlap(k, theta_raw) is missed, by pigeonhole:
/// k - MinOverlap + 1, clamped to [1, k]. This is the conservative +Drop
/// policy from Section 6.1.
uint32_t SufficientLists(uint32_t k, RawDistance theta_raw);

/// Worst-case absence cost of all positions p in [from_pos, k):
/// sum (k - p) = m*(m+1)/2 with m = k - from_pos. Used by the
/// List-at-a-Time bounds (a ranking's uncovered tail positions, a query's
/// unprocessed posting lists).
RawDistance AbsentSuffixCost(uint32_t k, uint32_t from_pos);

}  // namespace topk

#endif  // TOPK_CORE_BOUNDS_H_
