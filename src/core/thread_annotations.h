// Clang thread-safety annotation macros (no-ops on GCC/MSVC).
//
// These wrap Clang's `-Wthread-safety` capability analysis so the repo's
// locking discipline is compiler-enforced instead of comment-enforced: a
// member declared TOPK_GUARDED_BY(mu) can only be touched while `mu` is
// held, and a function declared TOPK_REQUIRES(mu) can only be called from
// a context that holds it — anything else is a hard build error on the CI
// thread-safety leg (clang++ with -Wthread-safety -Werror; see the
// "Static analysis" section of the README).
//
// The macro set mirrors the canonical mutex.h from the Clang docs
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), prefixed
// TOPK_ to stay collision-free. GCC (the default local toolchain) does
// not implement the attributes, so everything expands to nothing there —
// annotated code must build identically under both compilers.
//
// Use the wrappers in core/mutex.h (Mutex / MutexLock / CondVar) rather
// than std::mutex directly: the std types carry no capability attributes,
// so locking through them is invisible to the analysis.
// scripts/check_invariants.py enforces that rule tree-wide.

#ifndef TOPK_CORE_THREAD_ANNOTATIONS_H_
#define TOPK_CORE_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && !defined(SWIG)
#define TOPK_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define TOPK_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op
#endif

/// Declares a type to be a capability (lockable). The string argument is
/// the capability kind used in diagnostics ("mutex").
#define TOPK_CAPABILITY(x) \
  TOPK_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// Declares an RAII type whose constructor acquires and destructor
/// releases a capability (MutexLock).
#define TOPK_SCOPED_CAPABILITY \
  TOPK_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// The annotated member may only be accessed while `x` is held.
#define TOPK_GUARDED_BY(x) TOPK_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// The data *pointed to* by the annotated pointer member may only be
/// accessed while `x` is held (the pointer itself is unguarded).
#define TOPK_PT_GUARDED_BY(x) \
  TOPK_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// Lock-ordering declarations (deadlock prevention): this capability must
/// be acquired before/after the listed ones.
#define TOPK_ACQUIRED_BEFORE(...) \
  TOPK_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))
#define TOPK_ACQUIRED_AFTER(...) \
  TOPK_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

/// The annotated function may only be called while holding the listed
/// capabilities exclusively (resp. at least shared).
#define TOPK_REQUIRES(...) \
  TOPK_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))
#define TOPK_REQUIRES_SHARED(...) \
  TOPK_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

/// The annotated function acquires (resp. releases) the listed
/// capabilities; with no argument, the enclosing object itself.
#define TOPK_ACQUIRE(...) \
  TOPK_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
#define TOPK_ACQUIRE_SHARED(...) \
  TOPK_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))
#define TOPK_RELEASE(...) \
  TOPK_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))
#define TOPK_RELEASE_SHARED(...) \
  TOPK_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))

/// The annotated function acquires the capability iff it returns the
/// given value (TryLock).
#define TOPK_TRY_ACQUIRE(...) \
  TOPK_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

/// The annotated function must NOT be called while holding the listed
/// capabilities (non-reentrancy / deadlock documentation).
#define TOPK_EXCLUDES(...) \
  TOPK_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (tells the analysis to
/// assume it from here on).
#define TOPK_ASSERT_CAPABILITY(x) \
  TOPK_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

/// The annotated function returns a reference to the given capability.
#define TOPK_RETURN_CAPABILITY(x) \
  TOPK_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Escape hatch: the annotated function body is not analyzed. Every use
/// must carry a comment justifying why the contract holds anyway.
#define TOPK_NO_THREAD_SAFETY_ANALYSIS \
  TOPK_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

#endif  // TOPK_CORE_THREAD_ANNOTATIONS_H_
