#include "core/bounds.h"

#include <cmath>

#include "core/status.h"

namespace topk {

RawDistance MinDistanceForOverlap(uint32_t k, uint32_t overlap) {
  TOPK_DCHECK(overlap <= k);
  const RawDistance m = k - overlap;
  return m * (m + 1);
}

uint32_t MinOverlap(uint32_t k, RawDistance theta_raw) {
  // Largest m with m*(m+1) <= theta_raw; then w = k - m (clamped at 0).
  // m is at most k (theta never exceeds k*(k+1)), so a loop is instant and
  // avoids floating-point edge cases entirely.
  uint32_t m = 0;
  while (m < k && static_cast<RawDistance>(m + 1) * (m + 2) <= theta_raw) {
    ++m;
  }
  if (static_cast<RawDistance>(m) * (m + 1) > theta_raw) return k;  // m == 0
  return k - m;
}

uint32_t MinOverlapPaperFormula(uint32_t k, RawDistance theta_raw) {
  const double root = std::sqrt(1.0 + 4.0 * static_cast<double>(theta_raw));
  const double w = 0.5 * (1.0 + 2.0 * static_cast<double>(k) - root);
  if (w <= 0.0) return 0;
  const auto floored = static_cast<uint32_t>(w);
  return floored > k ? k : floored;
}

uint32_t SufficientLists(uint32_t k, RawDistance theta_raw) {
  const uint32_t w = MinOverlap(k, theta_raw);
  if (w == 0) return k;  // even disjoint rankings can qualify: read all
  const uint32_t lists = k - w + 1;
  return lists < 1 ? 1 : lists;
}

RawDistance AbsentSuffixCost(uint32_t k, uint32_t from_pos) {
  TOPK_DCHECK(from_pos <= k);
  const RawDistance m = k - from_pos;
  return m * (m + 1) / 2;
}

}  // namespace topk
