// Build-configuration sanity checks shared by every translation unit.
//
// The library is C++20: core/ranking.h builds its zero-copy views on
// std::span, and designated initializers / constexpr algorithms appear
// throughout. Under a C++17 toolchain default the first symptom is ~100
// cryptic "'span' does not name a template type" errors deep inside the
// include graph, so fail here with one actionable message instead. The
// build system pins the standard (target_compile_features(topk PUBLIC
// cxx_std_20) in src/CMakeLists.txt); this check catches non-CMake
// consumers compiling the sources directly.

#ifndef TOPK_CORE_CONFIG_H_
#define TOPK_CORE_CONFIG_H_

// MSVC reports 199711L unless /Zc:__cplusplus is set; _MSVC_LANG always
// carries the real standard there.
#if defined(_MSVC_LANG)
#define TOPK_CPLUSPLUS _MSVC_LANG
#else
#define TOPK_CPLUSPLUS __cplusplus
#endif

static_assert(TOPK_CPLUSPLUS >= 202002L,
              "topk requires C++20 (std::span in core/ranking.h). Build with "
              "-std=c++20, or via CMake, which pins cxx_std_20 on the topk "
              "target.");

#endif  // TOPK_CORE_CONFIG_H_
