// Kendall's tau with penalty parameter p for top-k lists (Fagin et al.).
//
// The paper focuses on Footrule but introduces Kendall's tau as the other
// prominent rank-distance (Section 3); we provide it for completeness and
// because the classical Diaconis-Graham inequality K <= F <= 2K is a strong
// property-test oracle for the Footrule kernel.

#ifndef TOPK_CORE_KENDALL_H_
#define TOPK_CORE_KENDALL_H_

#include "core/ranking.h"
#include "core/types.h"

namespace topk {

/// Kendall's tau distance K^(p) between two equal-size top-k lists, scaled
/// by 2 so the result stays integral for the common p values 0 and 1/2:
/// the returned value is 2 * K^(p).
///
/// Pairs {i, j} drawn from the union of the two domains contribute, per
/// Fagin et al.'s four cases:
///  1. both items in both lists: 1 if the lists order them differently;
///  2. both in one list, exactly one of them in the other: 1 if the list
///     containing both contradicts the implied order (the item missing from
///     the other list is implicitly ranked below its cutoff);
///  3. one item exclusive to each list: always 1;
///  4. both items missing from one of the lists: the penalty p (unknowable
///     order). p = 0 is the optimistic variant; p = 1/2 the neutral one.
///
/// `penalty_times_two` supplies 2*p, so 0 => p=0 and 1 => p=1/2.
uint64_t KendallTauTimesTwo(RankingView a, RankingView b,
                            uint64_t penalty_times_two);

/// Convenience wrapper returning K^(0) (the optimistic penalty), which is
/// integral without scaling.
uint64_t KendallTauOptimistic(RankingView a, RankingView b);

}  // namespace topk

#endif  // TOPK_CORE_KENDALL_H_
