// Deterministic pseudo-random number generation.
//
// Experiments must be reproducible bit-for-bit across platforms, so the
// library uses its own SplitMix64-based generator instead of <random>
// distributions (whose outputs are implementation-defined).

#ifndef TOPK_CORE_RNG_H_
#define TOPK_CORE_RNG_H_

#include <cstdint>
#include <vector>

#include "core/status.h"

namespace topk {

/// SplitMix64: tiny, fast, passes BigCrush; plenty for workload synthesis.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound), bound > 0. Uses Lemire's multiply-shift
  /// rejection method for unbiased results.
  uint64_t Below(uint64_t bound) {
    TOPK_DCHECK(bound > 0);
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<uint64_t>(m);
    if (low < bound) {
      const uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      std::swap((*v)[i - 1], (*v)[Below(i)]);
    }
  }

 private:
  uint64_t state_;
};

}  // namespace topk

#endif  // TOPK_CORE_RNG_H_
