#include "core/statistics.h"

namespace topk {

const char* TickerName(Ticker ticker) {
  switch (ticker) {
    case Ticker::kDistanceCalls:
      return "distance_calls";
    case Ticker::kPostingEntriesScanned:
      return "posting_entries_scanned";
    case Ticker::kPostingEntriesSkipped:
      return "posting_entries_skipped";
    case Ticker::kListsDropped:
      return "lists_dropped";
    case Ticker::kBlocksSkipped:
      return "blocks_skipped";
    case Ticker::kBlocksDecoded:
      return "blocks_decoded";
    case Ticker::kCandidates:
      return "candidates";
    case Ticker::kPrunedByLowerBound:
      return "pruned_by_lower_bound";
    case Ticker::kAcceptedByUpperBound:
      return "accepted_by_upper_bound";
    case Ticker::kPartitionsProbed:
      return "partitions_probed";
    case Ticker::kTreeNodesVisited:
      return "tree_nodes_visited";
    case Ticker::kResults:
      return "results";
    case Ticker::kResultCacheHits:
      return "result_cache_hits";
    case Ticker::kResultCacheMisses:
      return "result_cache_misses";
    case Ticker::kResultCacheEvictions:
      return "result_cache_evictions";
    case Ticker::kCandidateCacheHits:
      return "candidate_cache_hits";
    case Ticker::kCandidateCacheMisses:
      return "candidate_cache_misses";
    case Ticker::kCandidateCacheEvictions:
      return "candidate_cache_evictions";
    case Ticker::kDeadlineExceeded:
      return "deadline_exceeded";
    case Ticker::kLoadShed:
      return "load_shed";
    case Ticker::kDegradedReads:
      return "degraded_reads";
    case Ticker::kMergeRetries:
      return "merge_retries";
    case Ticker::kSnapshotsQuarantined:
      return "snapshots_quarantined";
    case Ticker::kNumTickers:
      break;
  }
  return "unknown";
}

}  // namespace topk
