// Posting-entry types shared by the index and kernel layers.
//
// AugmentedEntry historically lived in invidx/augmented_inverted_index.h,
// but the kernel filter phase needs the type to size its decoded-list
// landing buffers (kernel headers may only include core/), so the plain
// struct lives here and the index header re-exports it.

#ifndef TOPK_CORE_POSTING_ENTRY_H_
#define TOPK_CORE_POSTING_ENTRY_H_

#include <cstddef>

#include "core/types.h"

namespace topk {

/// Rank-augmented posting entry (Section 6.2): the rank at which the
/// ranking places the list's item rides next to the ranking id, so
/// Footrule contributions can be computed from the list alone.
struct AugmentedEntry {
  RankingId id;
  Rank rank;
};

/// Skip accounting for partial decodes of block-compressed posting
/// lists: how many blocks a range/window consumer considered, how many
/// it discarded on metadata alone, and how many entries those discarded
/// blocks held (never decoded, never touched in the byte stream).
struct BlockSkipStats {
  size_t blocks_considered = 0;
  size_t blocks_skipped = 0;
  size_t entries_skipped = 0;
};

}  // namespace topk

#endif  // TOPK_CORE_POSTING_ENTRY_H_
