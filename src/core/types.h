// Core identifier and distance types shared by every module.
//
// All distances in this library are *raw* Spearman's Footrule values:
// non-negative integers in [0, k*(k+1)] for rankings of size k. Working in
// integers keeps the metric discrete (as the BK-tree requires) and makes
// threshold comparisons exact; the normalized [0, 1] scale used in the
// paper's plots exists only at the API boundary (see NormalizeDistance /
// RawThreshold below).

#ifndef TOPK_CORE_TYPES_H_
#define TOPK_CORE_TYPES_H_

#include <cstddef>
#include <cstdint>
#include <limits>

#include "core/config.h"

namespace topk {

/// Identifier of an item appearing inside rankings. Items are dense
/// non-negative integers, as in the paper ("items are represented by their
/// ids").
using ItemId = uint32_t;

/// Identifier of a ranking within a RankingStore (its insertion position).
using RankingId = uint32_t;

/// A rank (position) inside a ranking: 0 is the top position, k-1 the last.
/// Items absent from a ranking are assigned the artificial rank l = k,
/// following Fagin et al.'s metric top-k adaptation used by the paper.
using Rank = uint32_t;

/// Raw (unnormalized, integral) Footrule distance.
using RawDistance = uint64_t;

inline constexpr RankingId kInvalidRankingId =
    std::numeric_limits<RankingId>::max();

/// splitmix64 finalizer: cheap, well-mixed, stable across platforms.
/// Shard placement (hash-by-id) and the order-insensitive result
/// checksums in the harness both depend on this exact function, so it
/// lives here rather than per-module.
inline constexpr uint64_t MixId64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Largest possible raw Footrule distance between two size-k rankings:
/// two disjoint rankings pay (k - p) for each position p on both sides,
/// i.e. 2 * sum_{j=1..k} j = k*(k+1).
inline constexpr RawDistance MaxDistance(uint32_t k) {
  return static_cast<RawDistance>(k) * (k + 1);
}

/// Normalizes a raw distance into [0, 1] (dmax = 1 as in the paper).
inline constexpr double NormalizeDistance(RawDistance d, uint32_t k) {
  return static_cast<double>(d) / static_cast<double>(MaxDistance(k));
}

/// Converts a normalized threshold theta in [0, 1] to the largest raw
/// distance that still satisfies it. A ranking qualifies iff
/// raw / (k*(k+1)) <= theta, i.e. raw <= theta * k * (k+1); since raw is
/// integral the cutoff is the floor, with a small epsilon guarding against
/// values like 0.3 * 110 evaluating to 32.999999999999996.
inline RawDistance RawThreshold(double theta_norm, uint32_t k) {
  if (theta_norm <= 0.0) return 0;
  const double scaled = theta_norm * static_cast<double>(MaxDistance(k));
  const auto raw = static_cast<RawDistance>(scaled + 1e-9);
  return raw > MaxDistance(k) ? MaxDistance(k) : raw;
}

}  // namespace topk

#endif  // TOPK_CORE_TYPES_H_
