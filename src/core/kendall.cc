#include "core/kendall.h"

#include <algorithm>
#include <vector>

namespace topk {

uint64_t KendallTauTimesTwo(RankingView a, RankingView b,
                            uint64_t penalty_times_two) {
  TOPK_DCHECK(a.k() == b.k());
  // Union of the two domains, deduplicated.
  std::vector<ItemId> universe(a.items().begin(), a.items().end());
  universe.insert(universe.end(), b.items().begin(), b.items().end());
  std::sort(universe.begin(), universe.end());
  universe.erase(std::unique(universe.begin(), universe.end()),
                 universe.end());

  uint64_t total = 0;  // accumulates 2 * K^(p)
  for (size_t x = 0; x < universe.size(); ++x) {
    for (size_t y = x + 1; y < universe.size(); ++y) {
      const ItemId i = universe[x];
      const ItemId j = universe[y];
      const auto ai = a.RankOf(i);
      const auto aj = a.RankOf(j);
      const auto bi = b.RankOf(i);
      const auto bj = b.RankOf(j);
      const bool i_in_a = ai.has_value();
      const bool j_in_a = aj.has_value();
      const bool i_in_b = bi.has_value();
      const bool j_in_b = bj.has_value();

      if (i_in_a && j_in_a && i_in_b && j_in_b) {
        // Case 1: both lists rank both items.
        if ((*ai < *aj) != (*bi < *bj)) total += 2;
      } else if (i_in_a && j_in_a && (i_in_b != j_in_b)) {
        // Case 2 with a as the list holding both; exactly one is in b,
        // which implicitly ranks its member ahead of the absent item —
        // penalize when a says the opposite.
        const bool a_puts_member_first =
            i_in_b ? (*ai < *aj) : (*aj < *ai);
        if (!a_puts_member_first) total += 2;
      } else if (i_in_b && j_in_b && (i_in_a != j_in_a)) {
        // Case 2 mirrored: b holds both, exactly one is in a.
        const bool b_puts_member_first =
            i_in_a ? (*bi < *bj) : (*bj < *bi);
        if (!b_puts_member_first) total += 2;
      } else if ((i_in_a && !i_in_b && j_in_b && !j_in_a) ||
                 (j_in_a && !j_in_b && i_in_b && !i_in_a)) {
        // Case 3: each list contains exactly one of the pair.
        total += 2;
      } else {
        // Case 4: both items live in only one of the lists (the same one).
        total += penalty_times_two;
      }
    }
  }
  return total;
}

uint64_t KendallTauOptimistic(RankingView a, RankingView b) {
  return KendallTauTimesTwo(a, b, 0) / 2;
}

}  // namespace topk
