// Execution counters and phase timers, in the spirit of RocksDB's
// Statistics tickers.
//
// Every query algorithm accepts an optional Statistics*; passing nullptr
// disables accounting with zero overhead on the hot path (a single branch).
// The paper's Figure 10 ("number of distance function calls") and the
// filter/validate phase splits of Figure 7 are produced from these tickers.

#ifndef TOPK_CORE_STATISTICS_H_
#define TOPK_CORE_STATISTICS_H_

#include <array>
#include <chrono>
#include <cstdint>

namespace topk {

enum class Ticker : int {
  /// Full Footrule evaluations (the paper's DFC measure).
  kDistanceCalls = 0,
  /// Posting entries touched while scanning inverted lists.
  kPostingEntriesScanned,
  /// Posting entries skipped by blocked access (Section 6.3).
  kPostingEntriesSkipped,
  /// Entire posting lists dropped by the overlap bound (Section 6.1).
  kListsDropped,
  /// Blocks skipped by the |j - q(i)| > theta rule (Section 6.3).
  kBlocksSkipped,
  /// Compressed posting blocks actually decoded (denominator partner of
  /// kBlocksSkipped for the storage tier's block-skip ratio).
  kBlocksDecoded,
  /// Distinct candidates produced by a filtering phase.
  kCandidates,
  /// Candidates rejected early by the lower bound (Section 6.2).
  kPrunedByLowerBound,
  /// Candidates accepted early by the upper bound (Section 6.2).
  kAcceptedByUpperBound,
  /// Medoids whose partitions were probed by the coarse index.
  kPartitionsProbed,
  /// Metric-tree nodes visited during range queries.
  kTreeNodesVisited,
  /// Final results returned.
  kResults,
  /// Serving-layer result cache (src/serve): exact answers served without
  /// touching any engine.
  kResultCacheHits,
  kResultCacheMisses,
  kResultCacheEvictions,
  /// Serving-layer candidate cache: filter phases skipped because the
  /// memoized candidate superset for the query's item set was reused.
  kCandidateCacheHits,
  kCandidateCacheMisses,
  kCandidateCacheEvictions,
  /// Robustness layer (see DESIGN.md "Failure model"): queries abandoned
  /// at their deadline, queries shed by admission control, reads served
  /// from the RAM fallback after an mmap-tier failure, merge attempts
  /// retried after an injected/real rebuild failure, and snapshot files
  /// quarantined as corrupt at startup scan.
  kDeadlineExceeded,
  kLoadShed,
  kDegradedReads,
  kMergeRetries,
  kSnapshotsQuarantined,
  kNumTickers
};

constexpr int kNumTickers = static_cast<int>(Ticker::kNumTickers);

/// Name of a ticker for reports.
const char* TickerName(Ticker ticker);

/// Plain counter block, intentionally without atomics: a Statistics is
/// owned by exactly one thread while counting. Parallel execution gives
/// every worker its own instance and the coordinator combines them with
/// Merge/MergeFrom after the workers are joined (the thread-pool future
/// handshake provides the happens-before edge), so the hot path stays a
/// single unsynchronized add and TSan sees no shared mutable state.
class Statistics {
 public:
  void Add(Ticker ticker, uint64_t count = 1) {
    tickers_[static_cast<int>(ticker)] += count;
  }
  uint64_t Get(Ticker ticker) const {
    return tickers_[static_cast<int>(ticker)];
  }
  void Reset() { tickers_.fill(0); }
  void MergeFrom(const Statistics& other) {
    for (int i = 0; i < kNumTickers; ++i) tickers_[i] += other.tickers_[i];
  }

  friend bool operator==(const Statistics&, const Statistics&) = default;

 private:
  std::array<uint64_t, kNumTickers> tickers_{};
};

/// Value-form merge. Ticker addition is unsigned-integer addition, so this
/// is commutative and associative (wrap-around included): aggregating
/// per-shard / per-thread blocks gives the same result in any combination
/// order — the property the parallel runner relies on and
/// core_statistics_test proves.
inline Statistics Merge(Statistics a, const Statistics& b) {
  a.MergeFrom(b);
  return a;
}

/// Convenience: increments only when stats is non-null.
inline void AddTicker(Statistics* stats, Ticker ticker, uint64_t count = 1) {
  if (stats != nullptr) stats->Add(ticker, count);
}

/// Monotonic wall-clock stopwatch (nanosecond resolution).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }
  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) / 1e6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulated wall time of the two query-processing phases the paper
/// reports separately (Figures 3 and 7).
struct PhaseTimes {
  double filter_ms = 0;
  double validate_ms = 0;

  double total_ms() const { return filter_ms + validate_ms; }
  void MergeFrom(const PhaseTimes& other) {
    filter_ms += other.filter_ms;
    validate_ms += other.validate_ms;
  }
};

}  // namespace topk

#endif  // TOPK_CORE_STATISTICS_H_
