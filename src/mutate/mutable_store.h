// MutableStore: the system's live write path — inserts and deletes
// while serving, exact at every step.
//
// Everything below src/mutate/ is build-once-query-forever: the CSR
// PostingArena, the engines, the serve frontend all bind an immutable
// RankingStore. MutableStore layers mutability on top without giving up
// exactness, using the LSM-style split the ROADMAP sketches:
//
//   main segment    an immutable RankingStore + PlainInvertedIndex (the
//                   CSR arena), rebuilt only by merges;
//   delta segment   a small RankingStore + DeltaInvertedIndex that
//                   absorbs Insert() without any rebuild (the index
//                   extends its frozen item order incrementally);
//   tombstones      Delete() marks a global id dead; dead ids are
//                   filtered out of every candidate list BEFORE
//                   validation and physically dropped at the next merge.
//
// Queries merge main + sealed + delta exactly: each segment runs the
// same kernel FilterPhase -> FootruleValidator pipeline every static
// engine uses (ValidateAll when theta admits disjoint rankings), locals
// map to global ids through strictly increasing per-segment maps, and
// the per-segment result lists concatenate in ascending global order
// (segment id ranges are disjoint and ordered). k-NN scans alive rows
// through the bound validator and truncates to the global (distance, id)
// order. Both answers are bit-identical to a store rebuilt from scratch
// out of the alive records in global-id order — the differential
// contract tests/mutate_store_test.cc and tests/adapt_delta_test.cc
// hold, including under TSan with concurrent writers and readers.
//
// Background merge (the RediSearch fork_gc.c shape — collect without
// blocking writers on the rebuild):
//
//   seal     O(1) under the store mutex: the active delta moves into a
//            sealed segment (the DeltaInvertedIndex moved-from state is
//            the fixed "empty, reusable" one), tombstones are
//            snapshotted, a fresh delta starts absorbing writes;
//   rebuild  OFF the lock: a new main segment is built from old main +
//            sealed minus the snapshotted tombstones, alive rows kept in
//            ascending global-id order, and its PlainInvertedIndex is
//            constructed — concurrent Insert/Delete proceed against the
//            fresh delta the whole time;
//   swap     O(1) under the mutex: the new segment is installed, the
//            consumed tombstones are erased (deletes that raced the
//            rebuild stay tombstoned and are compacted next round), and
//            the generation bumps.
//
// Queries and the swap serialize on one store mutex, so a reader never
// observes a half-installed segment; readers only ever wait for the O(1)
// seal/swap sections, never for the rebuild itself. The worker thread
// (options.merge_threshold > 0) runs this loop whenever the delta
// outgrows the threshold; MergeNow() runs one cycle on the caller.
//
// Generations: every successful mutation (Insert, Delete, merge swap)
// bumps an atomic generation and fires the registered mutation
// listeners under the store mutex — the hook QueryFrontend::WatchStore
// and serve/LiveFrontend use so cache invalidation flips atomically
// with the store (scripts/check_invariants.py lints that every mutation
// entry point bumps). Listeners must be cheap (an atomic bump), must
// not call back into the store, and must not take locks ordered above
// it (DESIGN.md records the hierarchy: coordinator > store > leaf).

#ifndef TOPK_MUTATE_MUTABLE_STORE_H_
#define TOPK_MUTATE_MUTABLE_STORE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "adapt/delta_inverted_index.h"
#include "core/deadline.h"
#include "core/mutex.h"
#include "core/ranking.h"
#include "core/statistics.h"
#include "core/thread_annotations.h"
#include "core/types.h"
#include "invidx/plain_inverted_index.h"
#include "kernel/filter_phase.h"
#include "kernel/footrule_batch.h"
#include "metric/knn.h"

namespace topk {

namespace storage {
class SnapshotManager;
}  // namespace storage

struct MutableStoreOptions {
  /// Delta size at which the background worker seals and merges. 0 means
  /// no worker thread is spawned — merges happen only via MergeNow()
  /// (the deterministic mode tests and single-threaded callers use).
  size_t merge_threshold = 0;

  /// When non-empty, every successful merge also persists the freshly
  /// rebuilt main segment as a compressed storage snapshot
  /// (storage/snapshot.h) at this path. The write runs OFF the store
  /// mutex, after the swap: writers and readers proceed against the
  /// installed segment while the file is emitted. The snapshot freezes
  /// the segment's rows in physical order (its dense local ids, not the
  /// sparse global ids) — it is a serving image for the frozen mmap
  /// tier, not a replayable WAL. Failures are recorded, not thrown:
  /// poll last_snapshot_status(). Ignored when snapshot_dir is set.
  std::string snapshot_path;

  /// When non-empty, merge-emitted snapshots go through a
  /// storage::SnapshotManager on this directory instead of a single
  /// fixed path: each emission is a new crash-safe generation, the
  /// newest snapshot_keep_generations are retained, and recovery
  /// (SnapshotManager::OpenNewestValid on the same directory) survives
  /// a SIGKILL at any point of any write. Takes precedence over
  /// snapshot_path.
  std::string snapshot_dir;
  size_t snapshot_keep_generations = 3;

  /// Merge/emission retry policy: a failed rebuild or snapshot write is
  /// retried up to merge_max_attempts times with exponential backoff
  /// (initial -> max ms, deterministic jitter seeded by
  /// merge_backoff_seed). When every attempt fails the merge circuit
  /// opens: background merging stops, the sealed + delta segments keep
  /// serving exactly (degraded but correct), and MergeNow() /
  /// ResetMergeCircuit() close the circuit again.
  int merge_max_attempts = 3;
  double merge_backoff_initial_ms = 1.0;
  double merge_backoff_max_ms = 100.0;
  uint64_t merge_backoff_seed = 0x9e3779b97f4a7c15ull;
};

class MutableStore {
 public:
  /// An empty store of rankings of size `k` (k >= 1).
  explicit MutableStore(uint32_t k, MutableStoreOptions options = {});

  /// Seeds the main segment with a copy of `initial` (global ids
  /// 0..initial.size()-1) and builds its inverted index.
  explicit MutableStore(const RankingStore& initial,
                        MutableStoreOptions options = {});

  ~MutableStore();

  MutableStore(const MutableStore&) = delete;
  MutableStore& operator=(const MutableStore&) = delete;

  uint32_t k() const { return k_; }

  /// Appends one ranking (size k, duplicate-free) and returns its global
  /// id. Global ids are dense in insertion order and never reused —
  /// a delete-then-reinsert of the same content gets a fresh id.
  RankingId Insert(RankingView record) TOPK_EXCLUDES(mutex_);

  /// Tombstones `id`. Returns false (and changes nothing) when the id was
  /// never assigned or is already dead; the row is physically dropped at
  /// the next merge.
  bool Delete(RankingId id) TOPK_EXCLUDES(mutex_);

  /// Whether `id` is alive (assigned, not deleted).
  bool Contains(RankingId id) const TOPK_EXCLUDES(mutex_);

  /// All alive rankings within `theta_raw` of `query`, ascending global
  /// ids — bit-identical to FilterValidateEngine/BruteForce over a store
  /// rebuilt from the alive rows (exact for every theta including dmax,
  /// where disjoint rankings qualify and the posting union is bypassed).
  std::vector<RankingId> RangeQuery(const PreparedQuery& query,
                                    RawDistance theta_raw,
                                    Statistics* stats = nullptr)
      TOPK_EXCLUDES(mutex_);

  /// Deadline/cancel-aware range query: cooperative checks run at
  /// segment and validation-batch granularity through `control`
  /// (nullptr = unconstrained). On a stop the partial answer is
  /// discarded, `out` is cleared, kDeadlineExceeded ticks, and the
  /// status is DeadlineExceeded (clock) or Aborted (cancel token).
  Status RangeQuery(const PreparedQuery& query, RawDistance theta_raw,
                    QueryControl* control, std::vector<RankingId>* out,
                    Statistics* stats = nullptr) TOPK_EXCLUDES(mutex_);

  /// The j alive rankings nearest to `query`, sorted by (distance,
  /// global id), exactly min(j, live_size()) entries — bit-identical to
  /// LinearScanKnn over the rebuilt store.
  std::vector<Neighbor> KnnQuery(const PreparedQuery& query, size_t j,
                                 Statistics* stats = nullptr)
      TOPK_EXCLUDES(mutex_);

  /// Deadline/cancel-aware k-NN (same stop contract as the range
  /// overload, with per-row amortized checks).
  Status KnnQuery(const PreparedQuery& query, size_t j,
                  QueryControl* control, std::vector<Neighbor>* out,
                  Statistics* stats = nullptr) TOPK_EXCLUDES(mutex_);

  /// Runs one seal -> rebuild -> swap cycle on the calling thread (waits
  /// first if another merge is in flight). Also the operator's recovery
  /// lever: an open merge circuit is closed before the attempt. Returns
  /// true iff a merged segment was installed — false when there was
  /// nothing to merge OR when every rebuild attempt failed and the
  /// circuit (re)opened; poll last_merge_status() to tell which.
  bool MergeNow() TOPK_EXCLUDES(mutex_);

  /// Outcome of the most recent merge cycle (OK until one fails).
  Status last_merge_status() const TOPK_EXCLUDES(mutex_);
  /// Whether the merge circuit breaker is open (background merging
  /// suspended after merge_max_attempts consecutive rebuild failures;
  /// sealed + delta keep serving exactly).
  bool merge_circuit_open() const TOPK_EXCLUDES(mutex_);
  /// Closes an open circuit so the background worker may merge again.
  void ResetMergeCircuit() TOPK_EXCLUDES(mutex_);
  /// Rebuild/emission attempts that failed and were retried (or gave
  /// up); the bench and tests read this where no Statistics flows.
  uint64_t merge_retries() const {
    return merge_retries_.load(std::memory_order_acquire);
  }

  /// Outcome of the most recent merge-emitted snapshot write (OK until
  /// the first one happens). Meaningful only with a non-empty
  /// options.snapshot_path or snapshot_dir.
  Status last_snapshot_status() const TOPK_EXCLUDES(mutex_);

  /// Registers `listener` to run (under the store mutex) after every
  /// successful mutation — see the header contract. Typically
  /// QueryFrontend::InvalidateCaches via WatchStore.
  void AddMutationListener(std::function<void()> listener)
      TOPK_EXCLUDES(mutex_);

  /// Monotone mutation generation, starting at 1 (0 is never published,
  /// matching the tree-wide reserved-zero epoch rule). Readable without
  /// the store mutex.
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// Alive rankings (inserted and not deleted).
  size_t live_size() const TOPK_EXCLUDES(mutex_);
  /// Rankings currently in the active delta segment (resets at a seal).
  size_t delta_size() const TOPK_EXCLUDES(mutex_);
  /// Tombstoned rankings not yet physically dropped by a merge.
  size_t tombstone_count() const TOPK_EXCLUDES(mutex_);
  /// Global ids assigned so far (== next id to be assigned).
  size_t total_inserted() const TOPK_EXCLUDES(mutex_);

 private:
  /// The immutable merged portion: rebuilt as a whole by merges, shared
  /// with in-flight rebuilds via shared_ptr (readers under the mutex,
  /// the rebuild off it — contents never mutate after construction).
  struct MainSegment {
    explicit MainSegment(uint32_t k) : store(k) {}
    RankingStore store;
    PlainInvertedIndex index;
    /// Physical row -> global id, strictly increasing.
    std::vector<RankingId> global_ids;
  };

  /// A delta segment: the active one absorbs inserts; a sealed one is an
  /// immutable snapshot being folded into the next main segment.
  struct DeltaSegment {
    explicit DeltaSegment(uint32_t k) : store(k) {}
    DeltaSegment(DeltaSegment&&) = default;
    RankingStore store;
    DeltaInvertedIndex index;
    std::vector<RankingId> global_ids;
  };

  void BumpGenerationLocked() TOPK_REQUIRES(mutex_);
  /// O(1): moves the active delta into sealed_ and starts a fresh one.
  void SealLocked() TOPK_REQUIRES(mutex_);
  /// O(1): installs the rebuilt segment, retires consumed tombstones.
  void InstallMergedLocked(std::shared_ptr<const MainSegment> next,
                           const std::unordered_set<RankingId>& consumed)
      TOPK_REQUIRES(mutex_);
  bool ContainsLocked(RankingId id) const TOPK_REQUIRES(mutex_);

  /// The off-lock rebuild: alive rows of `main` then `sealed`, ascending
  /// global ids, minus `dead`; builds the new CSR inverted index.
  std::shared_ptr<const MainSegment> BuildMergedSegment(
      const MainSegment& main, const DeltaSegment& sealed,
      const std::unordered_set<RankingId>& dead) const;

  /// BuildMergedSegment under the retry policy: injected
  /// (mutate.merge.rebuild) or allocation failures back off and retry up
  /// to merge_max_attempts; nullptr when every attempt failed.
  std::shared_ptr<const MainSegment> BuildMergedSegmentWithRetries(
      const MainSegment& main, const DeltaSegment& sealed,
      const std::unordered_set<RankingId>& dead);

  /// Off-lock tail of a claimed merge cycle (rebuild with retries, then
  /// install or open the circuit, then emit the snapshot). The caller
  /// must have set merge_in_flight_ and sealed/snapshotted the inputs.
  bool FinishMergeCycle(std::shared_ptr<const MainSegment> main_snapshot,
                        std::shared_ptr<const DeltaSegment> sealed_snapshot,
                        std::unordered_set<RankingId> consumed)
      TOPK_EXCLUDES(mutex_);

  /// Exponential backoff with deterministic jitter for attempt >= 1.
  void BackoffSleep(int attempt) const;

  void MergeWorkerLoop() TOPK_EXCLUDES(mutex_);

  /// Off-lock snapshot emission of a freshly installed main segment
  /// (no-op when options_.snapshot_path is empty); records the outcome
  /// in last_snapshot_status_.
  void MaybeEmitSnapshot(const MainSegment& segment) TOPK_EXCLUDES(mutex_);

  /// Range pipeline for one segment: FilterPhase over its index (or
  /// ValidateAll at theta >= dmax), tombstones filtered BEFORE
  /// validation, accepted locals mapped to global ids.
  template <typename Index>
  void CollectRangeLocked(const RankingStore& seg_store, const Index& index,
                          const std::vector<RankingId>& global_ids,
                          RankingView query, RawDistance theta_raw,
                          std::vector<RankingId>* out, Statistics* stats,
                          QueryControl* control) TOPK_REQUIRES(mutex_);

  void CollectKnnLocked(const RankingStore& seg_store,
                        const std::vector<RankingId>& global_ids,
                        RankingView query, std::vector<Neighbor>* out,
                        Statistics* stats, QueryControl* control)
      TOPK_REQUIRES(mutex_);

  const uint32_t k_;
  const MutableStoreOptions options_;

  /// The store mutex: serializes mutations, queries, and the merge's
  /// O(1) seal/swap sections (never the rebuild). Ordered below the
  /// serve/harness coordinators and above DeltaInvertedIndex::mutex_.
  mutable Mutex mutex_;
  CondVar merge_cv_;

  std::shared_ptr<const MainSegment> main_ TOPK_GUARDED_BY(mutex_);
  /// Non-null while a sealed segment awaits merging. Usually that means
  /// a merge is in flight, but after a failed cycle (open circuit) the
  /// sealed segment outlives the attempt and keeps serving — the
  /// in-flight claim is merge_in_flight_, not this pointer.
  std::shared_ptr<const DeltaSegment> sealed_ TOPK_GUARDED_BY(mutex_);
  DeltaSegment delta_ TOPK_GUARDED_BY(mutex_);
  /// Dead global ids still physically present in some segment.
  std::unordered_set<RankingId> tombstones_ TOPK_GUARDED_BY(mutex_);
  RankingId next_global_id_ TOPK_GUARDED_BY(mutex_) = 0;
  std::vector<std::function<void()>> listeners_ TOPK_GUARDED_BY(mutex_);
  bool stop_worker_ TOPK_GUARDED_BY(mutex_) = false;
  /// Exactly one merge cycle owns the rebuild at a time.
  bool merge_in_flight_ TOPK_GUARDED_BY(mutex_) = false;
  /// Open after merge_max_attempts consecutive rebuild failures; the
  /// worker stops attempting until MergeNow()/ResetMergeCircuit().
  bool merge_circuit_open_ TOPK_GUARDED_BY(mutex_) = false;
  Status last_merge_status_ TOPK_GUARDED_BY(mutex_);
  Status last_snapshot_status_ TOPK_GUARDED_BY(mutex_);

  /// Query scratch, reused across queries (queries serialize on mutex_).
  FilterScratch filter_ TOPK_GUARDED_BY(mutex_);
  FootruleValidator validator_ TOPK_GUARDED_BY(mutex_);
  std::vector<RankingId> pending_ TOPK_GUARDED_BY(mutex_);
  std::vector<RankingId> accepted_ TOPK_GUARDED_BY(mutex_);

  /// Starts at 1: generation 0 is never published (reserved-zero rule).
  std::atomic<uint64_t> generation_{1};

  /// Failed-and-retried rebuild/emission attempts (monotone).
  std::atomic<uint64_t> merge_retries_{0};

  /// Crash-safe generation lifecycle when options_.snapshot_dir is set;
  /// emissions are serialized by the merge_in_flight_ claim.
  std::unique_ptr<storage::SnapshotManager> snapshot_manager_;

  std::thread merge_worker_;
};

}  // namespace topk

#endif  // TOPK_MUTATE_MUTABLE_STORE_H_
