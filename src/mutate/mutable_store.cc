#include "mutate/mutable_store.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <new>
#include <numeric>
#include <utility>

#include "core/failpoint.h"
#include "invidx/drop_policy.h"
#include "storage/compressed_arena.h"
#include "storage/compressed_augmented.h"
#include "storage/snapshot.h"
#include "storage/snapshot_manager.h"

namespace topk {

namespace {

// splitmix64 drives the deterministic backoff jitter (same mixer the
// failpoint registry uses for probability thinning).
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

MutableStore::MutableStore(uint32_t k, MutableStoreOptions options)
    : k_(k), options_(options), delta_(k) {
  TOPK_DCHECK(k > 0);
  main_ = std::make_shared<MainSegment>(k_);
  if (!options_.snapshot_dir.empty()) {
    snapshot_manager_ = std::make_unique<storage::SnapshotManager>(
        options_.snapshot_dir,
        storage::SnapshotManagerOptions{options_.snapshot_keep_generations});
  }
  if (options_.merge_threshold > 0) {
    merge_worker_ = std::thread([this] { MergeWorkerLoop(); });
  }
}

MutableStore::MutableStore(const RankingStore& initial,
                           MutableStoreOptions options)
    : k_(initial.k()), options_(options), delta_(initial.k()) {
  auto main = std::make_shared<MainSegment>(k_);
  main->store = initial;
  main->index = PlainInvertedIndex::Build(main->store);
  main->global_ids.resize(initial.size());
  std::iota(main->global_ids.begin(), main->global_ids.end(), RankingId{0});
  main_ = std::move(main);
  next_global_id_ = static_cast<RankingId>(initial.size());
  if (!options_.snapshot_dir.empty()) {
    snapshot_manager_ = std::make_unique<storage::SnapshotManager>(
        options_.snapshot_dir,
        storage::SnapshotManagerOptions{options_.snapshot_keep_generations});
  }
  if (options_.merge_threshold > 0) {
    merge_worker_ = std::thread([this] { MergeWorkerLoop(); });
  }
}

MutableStore::~MutableStore() {
  if (merge_worker_.joinable()) {
    {
      MutexLock lock(&mutex_);
      stop_worker_ = true;
    }
    merge_cv_.NotifyAll();
    merge_worker_.join();
  }
}

RankingId MutableStore::Insert(RankingView record) {
  MutexLock lock(&mutex_);
  TOPK_DCHECK(record.k() == k_);
  const RankingId local = delta_.store.AddUnchecked(record.items());
  // Index the stored copy, not the caller's buffer: the view must stay
  // valid for as long as the index entry does.
  delta_.index.Insert(local, delta_.store.view(local));
  const RankingId global = next_global_id_++;
  delta_.global_ids.push_back(global);
  BumpGenerationLocked();
  if (options_.merge_threshold > 0 &&
      delta_.store.size() >= options_.merge_threshold) {
    merge_cv_.NotifyAll();
  }
  return global;
}

bool MutableStore::Delete(RankingId id) {
  MutexLock lock(&mutex_);
  if (!ContainsLocked(id)) return false;
  tombstones_.insert(id);
  BumpGenerationLocked();
  return true;
}

bool MutableStore::Contains(RankingId id) const {
  MutexLock lock(&mutex_);
  return ContainsLocked(id);
}

bool MutableStore::ContainsLocked(RankingId id) const {
  if (tombstones_.count(id) != 0) return false;
  const auto present = [id](const std::vector<RankingId>& ids) {
    return std::binary_search(ids.begin(), ids.end(), id);
  };
  // Newest segments first: a fresh id is most likely in the delta.
  if (present(delta_.global_ids)) return true;
  if (sealed_ != nullptr && present(sealed_->global_ids)) return true;
  return present(main_->global_ids);
}

size_t MutableStore::live_size() const {
  MutexLock lock(&mutex_);
  // Every tombstone refers to a physically present row (consumed ones
  // are erased at the swap), so alive = physical - tombstoned.
  const size_t physical = main_->store.size() + delta_.store.size() +
                          (sealed_ != nullptr ? sealed_->store.size() : 0);
  return physical - tombstones_.size();
}

size_t MutableStore::delta_size() const {
  MutexLock lock(&mutex_);
  return delta_.store.size();
}

size_t MutableStore::tombstone_count() const {
  MutexLock lock(&mutex_);
  return tombstones_.size();
}

size_t MutableStore::total_inserted() const {
  MutexLock lock(&mutex_);
  return next_global_id_;
}

void MutableStore::AddMutationListener(std::function<void()> listener) {
  MutexLock lock(&mutex_);
  listeners_.push_back(std::move(listener));
}

void MutableStore::BumpGenerationLocked() {
  generation_.fetch_add(1, std::memory_order_acq_rel);
  for (const auto& listener : listeners_) listener();
}

template <typename Index>
void MutableStore::CollectRangeLocked(const RankingStore& seg_store,
                                      const Index& index,
                                      const std::vector<RankingId>& global_ids,
                                      RankingView query, RawDistance theta_raw,
                                      std::vector<RankingId>* out,
                                      Statistics* stats,
                                      QueryControl* control) {
  if (seg_store.empty()) return;
  if (control != nullptr && control->ShouldStop()) return;
  validator_.BindQuery(query,
                       static_cast<size_t>(seg_store.max_item()) + 1);
  const auto n = static_cast<RankingId>(seg_store.size());
  // Tombstoned rows are dropped BEFORE validation: a dead row never
  // costs a distance call.
  pending_.clear();
  if (theta_raw >= MaxDistance(k_)) {
    // theta admits disjoint rankings (distance exactly dmax), so the
    // posting union is no longer a superset of the answer: every alive
    // row is a candidate. For theta < dmax the union is exact — a
    // non-overlapping ranking sits at dmax > theta.
    for (RankingId local = 0; local < n; ++local) {
      if (tombstones_.count(global_ids[local]) == 0) {
        pending_.push_back(local);
      }
    }
  } else {
    const auto candidates =
        FilterPhase(index, query, theta_raw, DropMode::kNone,
                    seg_store.size(), &filter_, stats);
    for (const RankingId local : candidates) {
      if (tombstones_.count(global_ids[local]) == 0) {
        pending_.push_back(local);
      }
    }
  }
  AddTicker(stats, Ticker::kCandidates, pending_.size());
  accepted_.clear();
  validator_.ValidateSpan(seg_store, pending_, theta_raw, &accepted_, stats,
                          control);
  for (const RankingId local : accepted_) {
    out->push_back(global_ids[local]);
  }
}

namespace {

/// Maps an observed stop to its Status and ticks the deadline counter.
Status StopStatus(const QueryControl& control, const char* what,
                  Statistics* stats) {
  AddTicker(stats, Ticker::kDeadlineExceeded);
  if (control.cancelled()) {
    return Status::Aborted(std::string(what) + " cancelled");
  }
  return Status::DeadlineExceeded(std::string(what) +
                                  " exceeded its deadline");
}

}  // namespace

std::vector<RankingId> MutableStore::RangeQuery(const PreparedQuery& query,
                                                RawDistance theta_raw,
                                                Statistics* stats) {
  std::vector<RankingId> out;
  const Status status = RangeQuery(query, theta_raw, nullptr, &out, stats);
  TOPK_DCHECK(status.ok());  // unconstrained queries cannot stop
  (void)status;
  return out;
}

Status MutableStore::RangeQuery(const PreparedQuery& query,
                                RawDistance theta_raw, QueryControl* control,
                                std::vector<RankingId>* out,
                                Statistics* stats) {
  MutexLock lock(&mutex_);
  TOPK_DCHECK(query.k() == k_);
  out->clear();
  CollectRangeLocked(main_->store, main_->index, main_->global_ids,
                     query.view(), theta_raw, out, stats, control);
  if (sealed_ != nullptr) {
    CollectRangeLocked(sealed_->store, sealed_->index, sealed_->global_ids,
                       query.view(), theta_raw, out, stats, control);
  }
  CollectRangeLocked(delta_.store, delta_.index, delta_.global_ids,
                     query.view(), theta_raw, out, stats, control);
  if (control != nullptr && control->stopped()) {
    // Partial per-segment results are not an answer; discard them so a
    // caller can never mistake a timed-out query for a small result.
    out->clear();
    return StopStatus(*control, "range query", stats);
  }
  // Per-segment accepts arrive in filter order; one sort restores the
  // ascending-global-id contract (segment id ranges are disjoint, so
  // this equals a k-way merge of sorted per-segment lists).
  std::sort(out->begin(), out->end());
  AddTicker(stats, Ticker::kResults, out->size());
  return Status::OK();
}

void MutableStore::CollectKnnLocked(const RankingStore& seg_store,
                                    const std::vector<RankingId>& global_ids,
                                    RankingView query,
                                    std::vector<Neighbor>* out,
                                    Statistics* stats,
                                    QueryControl* control) {
  if (seg_store.empty()) return;
  validator_.BindQuery(query,
                       static_cast<size_t>(seg_store.max_item()) + 1);
  const auto n = static_cast<RankingId>(seg_store.size());
  for (RankingId local = 0; local < n; ++local) {
    // ShouldStop amortizes its own clock reads, so the per-row cost is a
    // countdown compare.
    if (control != nullptr && control->ShouldStop()) return;
    const RankingId global = global_ids[local];
    if (tombstones_.count(global) != 0) continue;
    AddTicker(stats, Ticker::kDistanceCalls);
    out->push_back(
        Neighbor{global, validator_.Distance(seg_store.view(local))});
  }
}

std::vector<Neighbor> MutableStore::KnnQuery(const PreparedQuery& query,
                                             size_t j, Statistics* stats) {
  std::vector<Neighbor> out;
  const Status status = KnnQuery(query, j, nullptr, &out, stats);
  TOPK_DCHECK(status.ok());  // unconstrained queries cannot stop
  (void)status;
  return out;
}

Status MutableStore::KnnQuery(const PreparedQuery& query, size_t j,
                              QueryControl* control,
                              std::vector<Neighbor>* out, Statistics* stats) {
  MutexLock lock(&mutex_);
  TOPK_DCHECK(query.k() == k_);
  out->clear();
  CollectKnnLocked(main_->store, main_->global_ids, query.view(), out, stats,
                   control);
  if (sealed_ != nullptr) {
    CollectKnnLocked(sealed_->store, sealed_->global_ids, query.view(), out,
                     stats, control);
  }
  CollectKnnLocked(delta_.store, delta_.global_ids, query.view(), out, stats,
                   control);
  if (control != nullptr && control->stopped()) {
    out->clear();
    return StopStatus(*control, "knn query", stats);
  }
  const auto by_distance_then_id = [](const Neighbor& a, const Neighbor& b) {
    return a.distance != b.distance ? a.distance < b.distance : a.id < b.id;
  };
  const size_t take = std::min(j, out->size());
  std::partial_sort(out->begin(),
                    out->begin() + static_cast<ptrdiff_t>(take), out->end(),
                    by_distance_then_id);
  out->resize(take);
  return Status::OK();
}

void MutableStore::SealLocked() {
  auto sealed = std::make_shared<DeltaSegment>(std::move(delta_));
  // The fresh delta reuses the moved-from DeltaInvertedIndex directly:
  // the fixed move operations leave it in the documented empty state
  // (regression-pinned in adapt_delta_test). RankingStore's implicit
  // move keeps its scalar fields, so the store is re-made explicitly.
  delta_.store = RankingStore(k_);
  delta_.global_ids.clear();
  sealed_ = std::move(sealed);
}

void MutableStore::InstallMergedLocked(
    std::shared_ptr<const MainSegment> next,
    const std::unordered_set<RankingId>& consumed) {
  main_ = std::move(next);
  sealed_.reset();
  // Tombstones the rebuild consumed are physically gone; ones added
  // while it ran still refer to rows in the new main or the fresh delta
  // and keep filtering until the next merge compacts them.
  for (const RankingId id : consumed) tombstones_.erase(id);
  BumpGenerationLocked();
  merge_cv_.NotifyAll();
}

std::shared_ptr<const MutableStore::MainSegment>
MutableStore::BuildMergedSegment(
    const MainSegment& main, const DeltaSegment& sealed,
    const std::unordered_set<RankingId>& dead) const {
  auto next = std::make_shared<MainSegment>(k_);
  next->store.Reserve(main.store.size() + sealed.store.size());
  next->global_ids.reserve(main.store.size() + sealed.store.size());
  const auto append_alive = [&next, &dead](
                                const RankingStore& store,
                                const std::vector<RankingId>& globals) {
    const auto n = static_cast<RankingId>(store.size());
    for (RankingId local = 0; local < n; ++local) {
      const RankingId global = globals[local];
      if (dead.count(global) != 0) continue;
      next->store.AddUnchecked(store.view(local).items());
      next->global_ids.push_back(global);
    }
  };
  // Main then sealed keeps global ids ascending: every main id predates
  // every sealed id (ids are assigned in insert order and merges fold
  // oldest-first).
  append_alive(main.store, main.global_ids);
  append_alive(sealed.store, sealed.global_ids);
  next->index = PlainInvertedIndex::Build(next->store);
  return next;
}

void MutableStore::BackoffSleep(int attempt) const {
  const int shift = std::min(attempt - 1, 20);
  const double base =
      options_.merge_backoff_initial_ms * static_cast<double>(1ull << shift);
  const double capped =
      std::min(base, std::max(options_.merge_backoff_max_ms,
                              options_.merge_backoff_initial_ms));
  // Deterministic full jitter in [capped/2, capped]: decorrelates
  // colliding retriers without nondeterminism in tests.
  const uint64_t mixed = SplitMix64(options_.merge_backoff_seed ^
                                    static_cast<uint64_t>(attempt));
  const double fraction = static_cast<double>(mixed >> 11) * 0x1.0p-53;
  const double ms = capped * (0.5 + 0.5 * fraction);
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

std::shared_ptr<const MutableStore::MainSegment>
MutableStore::BuildMergedSegmentWithRetries(
    const MainSegment& main, const DeltaSegment& sealed,
    const std::unordered_set<RankingId>& dead) {
  const int max_attempts = std::max(1, options_.merge_max_attempts);
  for (int attempt = 1;; ++attempt) {
    if (!TOPK_FAILPOINT("mutate.merge.rebuild")) {
      try {
        return BuildMergedSegment(main, sealed, dead);
      } catch (const std::bad_alloc&) {
        // Allocation pressure is the one real-world failure a rebuild
        // has; it is exactly as transient as an injected fault.
      }
    }
    merge_retries_.fetch_add(1, std::memory_order_acq_rel);
    if (attempt >= max_attempts) return nullptr;
    BackoffSleep(attempt);
  }
}

bool MutableStore::FinishMergeCycle(
    std::shared_ptr<const MainSegment> main_snapshot,
    std::shared_ptr<const DeltaSegment> sealed_snapshot,
    std::unordered_set<RankingId> consumed) {
  // The rebuild runs with no lock held: writers land in the fresh
  // delta and readers query main + sealed + delta the whole time.
  auto next = BuildMergedSegmentWithRetries(*main_snapshot, *sealed_snapshot,
                                            consumed);
  {
    MutexLock lock(&mutex_);
    merge_in_flight_ = false;
    if (next == nullptr) {
      // Circuit breaker: stop burning rebuild attempts. The sealed
      // segment stays installed and keeps serving exactly alongside the
      // delta (degraded but correct); MergeNow()/ResetMergeCircuit()
      // close the circuit.
      merge_circuit_open_ = true;
      last_merge_status_ = Status::Aborted(
          "merge rebuild failed after " +
          std::to_string(std::max(1, options_.merge_max_attempts)) +
          " attempts; circuit open, serving from sealed + delta");
      merge_cv_.NotifyAll();
      return false;
    }
    last_merge_status_ = Status::OK();
    InstallMergedLocked(next, consumed);
  }
  MaybeEmitSnapshot(*next);
  return true;
}

bool MutableStore::MergeNow() {
  std::shared_ptr<const MainSegment> main_snapshot;
  std::shared_ptr<const DeltaSegment> sealed_snapshot;
  std::unordered_set<RankingId> consumed;
  {
    MutexLock lock(&mutex_);
    while (merge_in_flight_) merge_cv_.Wait(mutex_);
    // An explicit MergeNow doubles as the recovery lever: close an open
    // circuit and try again.
    merge_circuit_open_ = false;
    if (sealed_ == nullptr && delta_.store.empty() && tombstones_.empty()) {
      return false;
    }
    merge_in_flight_ = true;
    if (sealed_ == nullptr) {
      SealLocked();
      consumed = tombstones_;  // delta is now empty: all are consumable
    } else {
      // A sealed segment left over from a failed cycle: the active delta
      // has kept absorbing writes since, so only tombstones on rows this
      // rebuild actually drops may be retired at the swap — erasing a
      // delta-row tombstone here would resurrect the row.
      for (const RankingId id : tombstones_) {
        if (std::binary_search(main_->global_ids.begin(),
                               main_->global_ids.end(), id) ||
            std::binary_search(sealed_->global_ids.begin(),
                               sealed_->global_ids.end(), id)) {
          consumed.insert(id);
        }
      }
    }
    main_snapshot = main_;
    sealed_snapshot = sealed_;
  }
  return FinishMergeCycle(std::move(main_snapshot),
                          std::move(sealed_snapshot), std::move(consumed));
}

void MutableStore::MergeWorkerLoop() {
  while (true) {
    std::shared_ptr<const MainSegment> main_snapshot;
    std::shared_ptr<const DeltaSegment> sealed_snapshot;
    std::unordered_set<RankingId> consumed;
    {
      MutexLock lock(&mutex_);
      while (!stop_worker_ &&
             (merge_in_flight_ || merge_circuit_open_ ||
              delta_.store.size() < options_.merge_threshold)) {
        merge_cv_.Wait(mutex_);
      }
      if (stop_worker_) return;
      merge_in_flight_ = true;
      if (sealed_ == nullptr) {
        SealLocked();
        consumed = tombstones_;
      } else {
        // Same leftover-sealed rule as MergeNow (see there).
        for (const RankingId id : tombstones_) {
          if (std::binary_search(main_->global_ids.begin(),
                                 main_->global_ids.end(), id) ||
              std::binary_search(sealed_->global_ids.begin(),
                                 sealed_->global_ids.end(), id)) {
            consumed.insert(id);
          }
        }
      }
      main_snapshot = main_;
      sealed_snapshot = sealed_;
    }
    FinishMergeCycle(std::move(main_snapshot), std::move(sealed_snapshot),
                     std::move(consumed));
  }
}

void MutableStore::MaybeEmitSnapshot(const MainSegment& segment) {
  if (options_.snapshot_path.empty() && snapshot_manager_ == nullptr) return;
  Status status;
  if (segment.store.empty()) {
    // WriteStoreSnapshot rejects empty stores; a merge that compacted
    // everything away simply leaves the previous snapshot in place.
    status = Status::FailedPrecondition(
        "merge produced an empty segment; snapshot not rewritten");
  } else {
    const auto arena = storage::CompressedPostingArena<RankingId>::FromArena(
        segment.index.arena());
    // Freeze the augmented arena alongside the plain one so the snapshot
    // serves the compressed augmented engine too (TOPKSNP2).
    const auto augmented =
        storage::CompressedAugmentedIndex::Build(segment.store);
    // Emission gets the same retry-with-backoff treatment as the
    // rebuild: a transient write failure must not cost the durability of
    // this merge's image. Exhausted attempts are recorded, not thrown —
    // the in-RAM store is unaffected either way.
    const int max_attempts = std::max(1, options_.merge_max_attempts);
    for (int attempt = 1;; ++attempt) {
      if (TOPK_FAILPOINT("mutate.snapshot.emit")) {
        status = Status::IOError("injected failure: mutate.snapshot.emit");
      } else if (snapshot_manager_ != nullptr) {
        status = snapshot_manager_->WriteSnapshot(segment.store, arena,
                                                  augmented.arena());
      } else {
        status = storage::WriteStoreSnapshot(segment.store, arena,
                                             augmented.arena(),
                                             options_.snapshot_path);
      }
      if (status.ok() || attempt >= max_attempts) break;
      merge_retries_.fetch_add(1, std::memory_order_acq_rel);
      BackoffSleep(attempt);
    }
  }
  MutexLock lock(&mutex_);
  last_snapshot_status_ = status;
}

Status MutableStore::last_snapshot_status() const {
  MutexLock lock(&mutex_);
  return last_snapshot_status_;
}

Status MutableStore::last_merge_status() const {
  MutexLock lock(&mutex_);
  return last_merge_status_;
}

bool MutableStore::merge_circuit_open() const {
  MutexLock lock(&mutex_);
  return merge_circuit_open_;
}

void MutableStore::ResetMergeCircuit() {
  {
    MutexLock lock(&mutex_);
    merge_circuit_open_ = false;
  }
  merge_cv_.NotifyAll();
}

}  // namespace topk
