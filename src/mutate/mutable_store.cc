#include "mutate/mutable_store.h"

#include <algorithm>
#include <memory>
#include <numeric>
#include <utility>

#include "invidx/drop_policy.h"
#include "storage/compressed_arena.h"
#include "storage/compressed_augmented.h"
#include "storage/snapshot.h"

namespace topk {

MutableStore::MutableStore(uint32_t k, MutableStoreOptions options)
    : k_(k), options_(options), delta_(k) {
  TOPK_DCHECK(k > 0);
  main_ = std::make_shared<MainSegment>(k_);
  if (options_.merge_threshold > 0) {
    merge_worker_ = std::thread([this] { MergeWorkerLoop(); });
  }
}

MutableStore::MutableStore(const RankingStore& initial,
                           MutableStoreOptions options)
    : k_(initial.k()), options_(options), delta_(initial.k()) {
  auto main = std::make_shared<MainSegment>(k_);
  main->store = initial;
  main->index = PlainInvertedIndex::Build(main->store);
  main->global_ids.resize(initial.size());
  std::iota(main->global_ids.begin(), main->global_ids.end(), RankingId{0});
  main_ = std::move(main);
  next_global_id_ = static_cast<RankingId>(initial.size());
  if (options_.merge_threshold > 0) {
    merge_worker_ = std::thread([this] { MergeWorkerLoop(); });
  }
}

MutableStore::~MutableStore() {
  if (merge_worker_.joinable()) {
    {
      MutexLock lock(&mutex_);
      stop_worker_ = true;
    }
    merge_cv_.NotifyAll();
    merge_worker_.join();
  }
}

RankingId MutableStore::Insert(RankingView record) {
  MutexLock lock(&mutex_);
  TOPK_DCHECK(record.k() == k_);
  const RankingId local = delta_.store.AddUnchecked(record.items());
  // Index the stored copy, not the caller's buffer: the view must stay
  // valid for as long as the index entry does.
  delta_.index.Insert(local, delta_.store.view(local));
  const RankingId global = next_global_id_++;
  delta_.global_ids.push_back(global);
  BumpGenerationLocked();
  if (options_.merge_threshold > 0 &&
      delta_.store.size() >= options_.merge_threshold) {
    merge_cv_.NotifyAll();
  }
  return global;
}

bool MutableStore::Delete(RankingId id) {
  MutexLock lock(&mutex_);
  if (!ContainsLocked(id)) return false;
  tombstones_.insert(id);
  BumpGenerationLocked();
  return true;
}

bool MutableStore::Contains(RankingId id) const {
  MutexLock lock(&mutex_);
  return ContainsLocked(id);
}

bool MutableStore::ContainsLocked(RankingId id) const {
  if (tombstones_.count(id) != 0) return false;
  const auto present = [id](const std::vector<RankingId>& ids) {
    return std::binary_search(ids.begin(), ids.end(), id);
  };
  // Newest segments first: a fresh id is most likely in the delta.
  if (present(delta_.global_ids)) return true;
  if (sealed_ != nullptr && present(sealed_->global_ids)) return true;
  return present(main_->global_ids);
}

size_t MutableStore::live_size() const {
  MutexLock lock(&mutex_);
  // Every tombstone refers to a physically present row (consumed ones
  // are erased at the swap), so alive = physical - tombstoned.
  const size_t physical = main_->store.size() + delta_.store.size() +
                          (sealed_ != nullptr ? sealed_->store.size() : 0);
  return physical - tombstones_.size();
}

size_t MutableStore::delta_size() const {
  MutexLock lock(&mutex_);
  return delta_.store.size();
}

size_t MutableStore::tombstone_count() const {
  MutexLock lock(&mutex_);
  return tombstones_.size();
}

size_t MutableStore::total_inserted() const {
  MutexLock lock(&mutex_);
  return next_global_id_;
}

void MutableStore::AddMutationListener(std::function<void()> listener) {
  MutexLock lock(&mutex_);
  listeners_.push_back(std::move(listener));
}

void MutableStore::BumpGenerationLocked() {
  generation_.fetch_add(1, std::memory_order_acq_rel);
  for (const auto& listener : listeners_) listener();
}

template <typename Index>
void MutableStore::CollectRangeLocked(const RankingStore& seg_store,
                                      const Index& index,
                                      const std::vector<RankingId>& global_ids,
                                      RankingView query, RawDistance theta_raw,
                                      std::vector<RankingId>* out,
                                      Statistics* stats) {
  if (seg_store.empty()) return;
  validator_.BindQuery(query,
                       static_cast<size_t>(seg_store.max_item()) + 1);
  const auto n = static_cast<RankingId>(seg_store.size());
  // Tombstoned rows are dropped BEFORE validation: a dead row never
  // costs a distance call.
  pending_.clear();
  if (theta_raw >= MaxDistance(k_)) {
    // theta admits disjoint rankings (distance exactly dmax), so the
    // posting union is no longer a superset of the answer: every alive
    // row is a candidate. For theta < dmax the union is exact — a
    // non-overlapping ranking sits at dmax > theta.
    for (RankingId local = 0; local < n; ++local) {
      if (tombstones_.count(global_ids[local]) == 0) {
        pending_.push_back(local);
      }
    }
  } else {
    const auto candidates =
        FilterPhase(index, query, theta_raw, DropMode::kNone,
                    seg_store.size(), &filter_, stats);
    for (const RankingId local : candidates) {
      if (tombstones_.count(global_ids[local]) == 0) {
        pending_.push_back(local);
      }
    }
  }
  AddTicker(stats, Ticker::kCandidates, pending_.size());
  accepted_.clear();
  validator_.ValidateSpan(seg_store, pending_, theta_raw, &accepted_, stats);
  for (const RankingId local : accepted_) {
    out->push_back(global_ids[local]);
  }
}

std::vector<RankingId> MutableStore::RangeQuery(const PreparedQuery& query,
                                                RawDistance theta_raw,
                                                Statistics* stats) {
  MutexLock lock(&mutex_);
  TOPK_DCHECK(query.k() == k_);
  std::vector<RankingId> out;
  CollectRangeLocked(main_->store, main_->index, main_->global_ids,
                     query.view(), theta_raw, &out, stats);
  if (sealed_ != nullptr) {
    CollectRangeLocked(sealed_->store, sealed_->index, sealed_->global_ids,
                       query.view(), theta_raw, &out, stats);
  }
  CollectRangeLocked(delta_.store, delta_.index, delta_.global_ids,
                     query.view(), theta_raw, &out, stats);
  // Per-segment accepts arrive in filter order; one sort restores the
  // ascending-global-id contract (segment id ranges are disjoint, so
  // this equals a k-way merge of sorted per-segment lists).
  std::sort(out.begin(), out.end());
  AddTicker(stats, Ticker::kResults, out.size());
  return out;
}

void MutableStore::CollectKnnLocked(const RankingStore& seg_store,
                                    const std::vector<RankingId>& global_ids,
                                    RankingView query,
                                    std::vector<Neighbor>* out,
                                    Statistics* stats) {
  if (seg_store.empty()) return;
  validator_.BindQuery(query,
                       static_cast<size_t>(seg_store.max_item()) + 1);
  const auto n = static_cast<RankingId>(seg_store.size());
  for (RankingId local = 0; local < n; ++local) {
    const RankingId global = global_ids[local];
    if (tombstones_.count(global) != 0) continue;
    AddTicker(stats, Ticker::kDistanceCalls);
    out->push_back(
        Neighbor{global, validator_.Distance(seg_store.view(local))});
  }
}

std::vector<Neighbor> MutableStore::KnnQuery(const PreparedQuery& query,
                                             size_t j, Statistics* stats) {
  MutexLock lock(&mutex_);
  TOPK_DCHECK(query.k() == k_);
  std::vector<Neighbor> all;
  CollectKnnLocked(main_->store, main_->global_ids, query.view(), &all,
                   stats);
  if (sealed_ != nullptr) {
    CollectKnnLocked(sealed_->store, sealed_->global_ids, query.view(), &all,
                     stats);
  }
  CollectKnnLocked(delta_.store, delta_.global_ids, query.view(), &all,
                   stats);
  const auto by_distance_then_id = [](const Neighbor& a, const Neighbor& b) {
    return a.distance != b.distance ? a.distance < b.distance : a.id < b.id;
  };
  const size_t take = std::min(j, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<ptrdiff_t>(take),
                    all.end(), by_distance_then_id);
  all.resize(take);
  return all;
}

void MutableStore::SealLocked() {
  auto sealed = std::make_shared<DeltaSegment>(std::move(delta_));
  // The fresh delta reuses the moved-from DeltaInvertedIndex directly:
  // the fixed move operations leave it in the documented empty state
  // (regression-pinned in adapt_delta_test). RankingStore's implicit
  // move keeps its scalar fields, so the store is re-made explicitly.
  delta_.store = RankingStore(k_);
  delta_.global_ids.clear();
  sealed_ = std::move(sealed);
}

void MutableStore::InstallMergedLocked(
    std::shared_ptr<const MainSegment> next,
    const std::unordered_set<RankingId>& consumed) {
  main_ = std::move(next);
  sealed_.reset();
  // Tombstones the rebuild consumed are physically gone; ones added
  // while it ran still refer to rows in the new main or the fresh delta
  // and keep filtering until the next merge compacts them.
  for (const RankingId id : consumed) tombstones_.erase(id);
  BumpGenerationLocked();
  merge_cv_.NotifyAll();
}

std::shared_ptr<const MutableStore::MainSegment>
MutableStore::BuildMergedSegment(
    const MainSegment& main, const DeltaSegment& sealed,
    const std::unordered_set<RankingId>& dead) const {
  auto next = std::make_shared<MainSegment>(k_);
  next->store.Reserve(main.store.size() + sealed.store.size());
  next->global_ids.reserve(main.store.size() + sealed.store.size());
  const auto append_alive = [&next, &dead](
                                const RankingStore& store,
                                const std::vector<RankingId>& globals) {
    const auto n = static_cast<RankingId>(store.size());
    for (RankingId local = 0; local < n; ++local) {
      const RankingId global = globals[local];
      if (dead.count(global) != 0) continue;
      next->store.AddUnchecked(store.view(local).items());
      next->global_ids.push_back(global);
    }
  };
  // Main then sealed keeps global ids ascending: every main id predates
  // every sealed id (ids are assigned in insert order and merges fold
  // oldest-first).
  append_alive(main.store, main.global_ids);
  append_alive(sealed.store, sealed.global_ids);
  next->index = PlainInvertedIndex::Build(next->store);
  return next;
}

bool MutableStore::MergeNow() {
  std::shared_ptr<const MainSegment> main_snapshot;
  std::shared_ptr<const DeltaSegment> sealed_snapshot;
  std::unordered_set<RankingId> consumed;
  {
    MutexLock lock(&mutex_);
    while (sealed_ != nullptr) merge_cv_.Wait(mutex_);
    if (delta_.store.empty() && tombstones_.empty()) return false;
    SealLocked();
    main_snapshot = main_;
    sealed_snapshot = sealed_;
    consumed = tombstones_;
  }
  auto next = BuildMergedSegment(*main_snapshot, *sealed_snapshot, consumed);
  {
    MutexLock lock(&mutex_);
    InstallMergedLocked(next, consumed);
  }
  MaybeEmitSnapshot(*next);
  return true;
}

void MutableStore::MergeWorkerLoop() {
  while (true) {
    std::shared_ptr<const MainSegment> main_snapshot;
    std::shared_ptr<const DeltaSegment> sealed_snapshot;
    std::unordered_set<RankingId> consumed;
    {
      MutexLock lock(&mutex_);
      while (!stop_worker_ &&
             (sealed_ != nullptr ||
              delta_.store.size() < options_.merge_threshold)) {
        merge_cv_.Wait(mutex_);
      }
      if (stop_worker_) return;
      SealLocked();
      main_snapshot = main_;
      sealed_snapshot = sealed_;
      consumed = tombstones_;
    }
    // The rebuild runs with no lock held: writers land in the fresh
    // delta and readers query main + sealed + delta the whole time.
    auto next =
        BuildMergedSegment(*main_snapshot, *sealed_snapshot, consumed);
    {
      MutexLock lock(&mutex_);
      InstallMergedLocked(next, consumed);
    }
    MaybeEmitSnapshot(*next);
  }
}

void MutableStore::MaybeEmitSnapshot(const MainSegment& segment) {
  if (options_.snapshot_path.empty()) return;
  Status status;
  if (segment.store.empty()) {
    // WriteStoreSnapshot rejects empty stores; a merge that compacted
    // everything away simply leaves the previous snapshot in place.
    status = Status::FailedPrecondition(
        "merge produced an empty segment; snapshot not rewritten");
  } else {
    const auto arena = storage::CompressedPostingArena<RankingId>::FromArena(
        segment.index.arena());
    // Freeze the augmented arena alongside the plain one so the snapshot
    // serves the compressed augmented engine too (TOPKSNP2).
    const auto augmented =
        storage::CompressedAugmentedIndex::Build(segment.store);
    status = storage::WriteStoreSnapshot(segment.store, arena,
                                         augmented.arena(),
                                         options_.snapshot_path);
  }
  MutexLock lock(&mutex_);
  last_snapshot_status_ = status;
}

Status MutableStore::last_snapshot_status() const {
  MutexLock lock(&mutex_);
  return last_snapshot_status_;
}

}  // namespace topk
