// List-at-a-Time processing with partial-information distance bounds
// (Section 6.2), in the spirit of Fagin et al.'s NRA.
//
// The k rank-augmented posting lists of the query's items are processed
// one after the other. For a candidate tau seen in a subset of the lists,
// with S = sum |j - r| over the seen (query rank j, indexed rank r) pairs,
// A(t) = sum_{j < t} (k - j) the total absence cost of the t processed
// lists, Q = sum (k - j) over the lists tau appeared in, and
// C = sum (k - r) over tau's covered positions:
//
//   lower bound  L(t) = S + (A(t) - Q)
//   upper bound  U(t) = L(t) + AbsentSuffixCost(k, t) + (k(k+1)/2 - C)
//
// L charges only what is certain: seen mismatches plus the known-absent
// cost of processed lists tau missed (a fully processed list proves
// absence). U additionally charges the worst case for the unprocessed
// query items and for tau's uncovered positions — both computable exactly
// because rankings are bijections onto 0..k-1. L is monotonically
// non-decreasing, U non-increasing, and U(k) equals the exact distance, so
// survivors are classified without ever touching the stored rankings.
//
// These bounds deviate from the paper's Section 6.2 formula, whose running
// example is arithmetically inconsistent (it gives U(tau_6, q) = 24 where
// no sound bound consistent with its own U(tau_3, q) = 20 can); see
// DESIGN.md. An optional refinement tightens L further: if tau missed m of
// the processed lists, at least m of its uncovered positions must hold
// non-query items, paying at least 1 + 2 + ... + m (the cheapest distinct
// positions) — enabled by LaatOptions::refined_lower_bound and compared in
// bench/ablation_bounds.

#ifndef TOPK_INVIDX_LIST_AT_A_TIME_H_
#define TOPK_INVIDX_LIST_AT_A_TIME_H_

#include <vector>

#include "core/ranking.h"
#include "core/statistics.h"
#include "core/types.h"
#include "invidx/augmented_inverted_index.h"

namespace topk {

struct LaatOptions {
  /// Evict candidates whose lower bound exceeds theta (Section 6.2).
  bool prune_lower_bound = true;
  /// Report candidates early once their upper bound drops to theta,
  /// removing them from further bookkeeping (Section 6.2).
  bool accept_upper_bound = true;
  /// Add the surplus-slot term to the lower bound (extension; see above).
  bool refined_lower_bound = false;
};

class ListAtATimeEngine {
 public:
  /// `index` must outlive the engine. `num_indexed` bounds candidate ids.
  ListAtATimeEngine(const AugmentedInvertedIndex* index,
                    LaatOptions options = {});

  std::vector<RankingId> Query(const PreparedQuery& query,
                               RawDistance theta_raw,
                               Statistics* stats = nullptr);

 private:
  struct Accumulator {
    uint32_t epoch = 0;
    RawDistance seen_sum = 0;       // S
    RawDistance seen_q_cost = 0;    // Q
    RawDistance seen_tau_cover = 0; // C
    uint32_t seen_count = 0;
    bool dead = false;
    bool reported = false;
  };

  const AugmentedInvertedIndex* index_;
  LaatOptions options_;
  std::vector<Accumulator> accs_;
  std::vector<RankingId> touched_;
  uint32_t epoch_ = 0;
};

}  // namespace topk

#endif  // TOPK_INVIDX_LIST_AT_A_TIME_H_
