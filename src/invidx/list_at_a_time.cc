#include "invidx/list_at_a_time.h"

#include <algorithm>

#include "core/bounds.h"

namespace topk {

ListAtATimeEngine::ListAtATimeEngine(const AugmentedInvertedIndex* index,
                                     LaatOptions options)
    : index_(index), options_(options) {
  accs_.resize(index_->num_indexed());
}

std::vector<RankingId> ListAtATimeEngine::Query(const PreparedQuery& query,
                                                RawDistance theta_raw,
                                                Statistics* stats) {
  const uint32_t k = query.k();
  const RankingView q = query.view();
  const RawDistance half_absent = AbsentSuffixCost(k, 0);  // k(k+1)/2
  ++epoch_;
  if (epoch_ == 0) {  // epoch wrapped; reset lazily
    for (auto& acc : accs_) acc.epoch = 0;
    epoch_ = 1;
  }
  touched_.clear();
  std::vector<RankingId> results;

  RawDistance processed_absent = 0;  // A(t)
  for (Rank t = 0; t < k; ++t) {
    const RawDistance suffix_after = AbsentSuffixCost(k, t + 1);
    for (const AugmentedEntry& entry : index_->list(q[t])) {
      AddTicker(stats, Ticker::kPostingEntriesScanned);
      Accumulator& acc = accs_[entry.id];
      if (acc.epoch != epoch_) {
        acc = Accumulator{};
        acc.epoch = epoch_;
        touched_.push_back(entry.id);
      } else if (acc.dead || acc.reported) {
        continue;
      }
      const Rank r = entry.rank;
      acc.seen_sum += r > t ? r - t : t - r;
      acc.seen_q_cost += k - t;
      acc.seen_tau_cover += k - r;
      ++acc.seen_count;

      // A(t+1) includes this list's absence cost; candidates present in it
      // already paid via seen_q_cost.
      const RawDistance absent_known =
          processed_absent + (k - t) - acc.seen_q_cost;
      RawDistance lower = acc.seen_sum + absent_known;
      if (options_.refined_lower_bound) {
        const RawDistance missed = (t + 1) - acc.seen_count;
        lower += missed * (missed + 1) / 2;
      }
      if (options_.prune_lower_bound && lower > theta_raw) {
        acc.dead = true;
        AddTicker(stats, Ticker::kPrunedByLowerBound);
        continue;
      }
      const RawDistance upper = acc.seen_sum + absent_known + suffix_after +
                                (half_absent - acc.seen_tau_cover);
      if (options_.accept_upper_bound && upper <= theta_raw) {
        acc.reported = true;
        results.push_back(entry.id);
        AddTicker(stats, Ticker::kAcceptedByUpperBound);
      }
    }
    processed_absent += k - t;
  }
  AddTicker(stats, Ticker::kCandidates, touched_.size());

  // Final classification: with all k lists processed the exact distance is
  // available directly from the accumulator (U(k) in the header).
  for (RankingId id : touched_) {
    const Accumulator& acc = accs_[id];
    if (acc.dead || acc.reported) continue;
    const RawDistance exact = acc.seen_sum +
                              (processed_absent - acc.seen_q_cost) +
                              (half_absent - acc.seen_tau_cover);
    if (exact <= theta_raw) results.push_back(id);
  }
  std::sort(results.begin(), results.end());
  AddTicker(stats, Ticker::kResults, results.size());
  return results;
}

}  // namespace topk
