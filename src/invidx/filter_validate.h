// Filter & Validate (F&V) query processing over the plain inverted index
// (Section 4), optionally with posting-list dropping (F&V+Drop,
// Section 6.1).
//
// Both phases are kernel calls (src/kernel/): FilterPhase merges the query
// items' posting lists into a deduplicated candidate set, and the batched
// FootruleValidator computes exact distances for the whole candidate span
// from a query rank table bound once per query. The engine owns the
// per-query scratch (visited set, candidate list, rank table), so one
// instance serves any number of sequential queries without allocation
// churn.

#ifndef TOPK_INVIDX_FILTER_VALIDATE_H_
#define TOPK_INVIDX_FILTER_VALIDATE_H_

#include <vector>

#include "core/ranking.h"
#include "core/statistics.h"
#include "core/types.h"
#include "invidx/drop_policy.h"
#include "invidx/plain_inverted_index.h"
#include "kernel/filter_phase.h"
#include "kernel/footrule_batch.h"

namespace topk {

struct FilterValidateOptions {
  DropMode drop = DropMode::kNone;
};

class FilterValidateEngine {
 public:
  /// `store` and `index` must outlive the engine.
  FilterValidateEngine(const RankingStore* store,
                       const PlainInvertedIndex* index,
                       FilterValidateOptions options = {});

  /// All rankings within raw distance `theta_raw` of the query, in
  /// ascending id order.
  std::vector<RankingId> Query(const PreparedQuery& query,
                               RawDistance theta_raw,
                               Statistics* stats = nullptr);

  /// Query restricted to ids in [id_lo, id_hi]: the filter phase clips
  /// each id-sorted list to the range before merging. Results are
  /// identical to Query() filtered to the id range — the uncompressed
  /// reference for the compressed tier's block-skip sweeps.
  std::vector<RankingId> QueryIdRange(const PreparedQuery& query,
                                      RawDistance theta_raw, RankingId id_lo,
                                      RankingId id_hi,
                                      Statistics* stats = nullptr);

 private:
  const RankingStore* store_;
  const PlainInvertedIndex* index_;
  FilterValidateOptions options_;
  FilterScratch filter_;
  FootruleValidator validator_;
};

}  // namespace topk

#endif  // TOPK_INVIDX_FILTER_VALIDATE_H_
