// ListMerge: merge-join of id-sorted, rank-augmented posting lists
// (Section 7, "Merge of Id-Sorted Lists with Aggregation").
//
// Cursors walk the k posting lists of the query's items in ranking-id
// order; because the lists are id-sorted and duplicate-free, the exact
// Footrule distance of each encountered ranking can be finalized on the
// fly with no bookkeeping beyond the ranking currently under the cursors.
//
// The on-the-fly finalization uses the bijection identity: for a candidate
// tau whose common items with the query q were seen at (query rank j,
// indexed rank r) pairs,
//
//   F(tau, q) = sum |j - r|                      (common items)
//             + [k(k+1)/2 - sum (k - j)]         (query items not in tau)
//             + [k(k+1)/2 - sum (k - r)]         (tau items not in q)
//
// since the absence costs of both sides total k(k+1)/2 minus the covered
// part. The algorithm is threshold-agnostic: every list is read fully.

#ifndef TOPK_INVIDX_LIST_MERGE_H_
#define TOPK_INVIDX_LIST_MERGE_H_

#include <vector>

#include "core/ranking.h"
#include "core/statistics.h"
#include "core/types.h"
#include "invidx/augmented_inverted_index.h"

namespace topk {

class ListMergeEngine {
 public:
  /// `index` must outlive the engine.
  explicit ListMergeEngine(const AugmentedInvertedIndex* index)
      : index_(index) {}

  std::vector<RankingId> Query(const PreparedQuery& query,
                               RawDistance theta_raw,
                               Statistics* stats = nullptr);

 private:
  const AugmentedInvertedIndex* index_;
};

}  // namespace topk

#endif  // TOPK_INVIDX_LIST_MERGE_H_
