#include "invidx/blocked_inverted_index.h"

#include <algorithm>

#include "core/bounds.h"
#include "kernel/block_sweep.h"

namespace topk {

BlockedInvertedIndex BlockedInvertedIndex::Build(const RankingStore& store) {
  BlockedInvertedIndex index;
  index.k_ = store.k();
  index.num_indexed_ = store.size();
  const size_t num_items = static_cast<size_t>(store.max_item()) + 1;
  index.arena_ = BuildAugmentedArena(store);
  // Rank-major (then id) order per list; scanning rankings in id order
  // already yields ids ascending within each rank, so a stable sort by rank
  // suffices. Sorting happens in place inside the arena.
  index.offsets_.reserve(num_items * (index.k_ + 1));
  index.offsets_.assign(num_items * (index.k_ + 1), 0);
  for (size_t item = 0; item < num_items; ++item) {
    const std::span<AugmentedEntry> list = index.arena_.mutable_list(item);
    std::stable_sort(
        list.begin(), list.end(),
        [](const AugmentedEntry& a, const AugmentedEntry& b) {
          return a.rank < b.rank;
        });
    uint32_t* off = &index.offsets_[item * (index.k_ + 1)];
    size_t pos = 0;
    for (Rank j = 0; j < index.k_; ++j) {
      off[j] = static_cast<uint32_t>(pos);
      while (pos < list.size() && list[pos].rank == j) ++pos;
    }
    off[index.k_] = static_cast<uint32_t>(list.size());
  }
  return index;
}

BlockedEngine::BlockedEngine(const RankingStore* store,
                             const BlockedInvertedIndex* index,
                             BlockedOptions options)
    : store_(store), index_(index), options_(options) {
  accs_.resize(index_->num_indexed());
  validator_.EnsureItemCapacity(
      store->empty() ? 0 : static_cast<size_t>(store->max_item()) + 1);
}

std::vector<RankingId> BlockedEngine::Query(const PreparedQuery& query,
                                            RawDistance theta_raw,
                                            Statistics* stats) {
  ++epoch_;
  if (epoch_ == 0) {
    for (auto& acc : accs_) acc.epoch = 0;
    epoch_ = 1;
  }
  touched_.clear();
  const bool use_scheduling =
      options_.scheduled && options_.drop == DropMode::kNone;
  return use_scheduling ? QueryScheduled(query, theta_raw, stats)
                        : QueryWindowed(query, theta_raw, stats);
}

std::vector<RankingId> BlockedEngine::QueryWindowed(
    const PreparedQuery& query, RawDistance theta_raw, Statistics* stats) {
  const uint32_t k = query.k();
  const RankingView q = query.view();
  const std::vector<uint32_t> positions =
      SelectLists(q, theta_raw, options_.drop,
                  [this](ItemId item) { return index_->list_length(item); },
                  stats);

  RawDistance processed_absent = 0;  // over processed (kept) lists
  for (size_t pi = 0; pi < positions.size(); ++pi) {
    const uint32_t t = positions[pi];
    if (processed_absent > theta_raw) {
      // Discovery is impossible from here on: a candidate first appearing
      // at this or any later kept list has already paid more than theta
      // in query-side absences. Account the remaining lists as skipped
      // and stop sweeping; survivors are validated exactly regardless.
      for (size_t rest = pi; rest < positions.size(); ++rest) {
        AddTicker(stats, Ticker::kPostingEntriesSkipped,
                  index_->list_length(q[positions[rest]]));
        AddTicker(stats, Ticker::kBlocksSkipped, k);
      }
      break;
    }
    // Accessible window under the remaining discovery budget: blocks with
    // |j - t| <= theta - processed_absent (DESIGN.md, "Block-skipping
    // sweep", proves this tighter-than-theta window misses no result).
    const RawDistance budget = theta_raw - processed_absent;
    const BlockWindow window = AccessibleBlockWindow(t, k, budget);
    const size_t scanned = BlockRangeSweep(
        index_->list(q[t]), index_->block_offsets(q[t]), window,
        [&](Rank j, std::span<const AugmentedEntry> block) {
          const Rank delta = j > t ? j - t : t - j;  // hoisted per block
          for (const AugmentedEntry& entry : block) {
            Accumulator& acc = accs_[entry.id];
            if (acc.epoch != epoch_) {
              acc = Accumulator{};
              acc.epoch = epoch_;
              touched_.push_back(entry.id);
            } else if (acc.dead) {
              continue;
            }
            acc.seen_sum += delta;
            acc.seen_q_cost += k - t;
            // Threshold-sound lower bound: a kept processed list the
            // candidate missed either proves absence (cost k - t') or
            // hides the candidate in a skipped block — and any block
            // skipped before a later list is scanned lies at
            // |j' - t'| >= k - t', so the absence cost still lower-bounds
            // the true contribution (DESIGN.md).
            const RawDistance lower =
                acc.seen_sum + processed_absent + (k - t) - acc.seen_q_cost;
            if (lower > theta_raw) {
              acc.dead = true;
              AddTicker(stats, Ticker::kPrunedByLowerBound);
            }
          }
        });
    AddTicker(stats, Ticker::kPostingEntriesScanned, scanned);
    AddTicker(stats, Ticker::kPostingEntriesSkipped,
              index_->list_length(q[t]) - scanned);
    AddTicker(stats, Ticker::kBlocksSkipped,
              window.lo + (k - 1 - window.hi));
    processed_absent += k - t;
  }
  return ValidateSurvivors(query, theta_raw, stats);
}

std::vector<RankingId> BlockedEngine::QueryScheduled(
    const PreparedQuery& query, RawDistance theta_raw, Statistics* stats) {
  const uint32_t k = query.k();
  const RankingView q = query.view();
  // Cheapest possible distance of a candidate first discovered in round
  // delta: every common item pays at least delta, and with overlap o the
  // absence structure pays at least L(k, o).
  auto min_unseen = [k](RawDistance delta) {
    RawDistance best = MaxDistance(k);
    for (uint32_t o = 1; o <= k; ++o) {
      best = std::min(best, o * delta + MinDistanceForOverlap(k, o));
    }
    return best;
  };

  const RawDistance delta_max =
      std::min<RawDistance>(theta_raw, k > 0 ? k - 1 : 0);
  for (RawDistance delta = 0; delta <= delta_max; ++delta) {
    if (min_unseen(delta) > theta_raw && delta > 0) {
      // New discoveries are impossible and survivors are validated exactly
      // anyway: stop scheduling blocks (the paper's early termination).
      break;
    }
    for (Rank t = 0; t < k; ++t) {
      for (int side = 0; side < 2; ++side) {
        // Blocks at rank t - delta and t + delta (deduplicated at delta 0).
        if (delta == 0 && side == 1) continue;
        const int64_t j64 = side == 0 ? static_cast<int64_t>(t) - delta
                                      : static_cast<int64_t>(t) + delta;
        if (j64 < 0 || j64 >= static_cast<int64_t>(k)) continue;
        const Rank j = static_cast<Rank>(j64);
        const size_t scanned = BlockRangeSweep(
            index_->list(q[t]), index_->block_offsets(q[t]),
            BlockWindow{j, j},
            [&](Rank, std::span<const AugmentedEntry> block) {
              for (const AugmentedEntry& entry : block) {
                Accumulator& acc = accs_[entry.id];
                if (acc.epoch != epoch_) {
                  acc = Accumulator{};
                  acc.epoch = epoch_;
                  touched_.push_back(entry.id);
                } else if (acc.dead) {
                  continue;
                }
                acc.seen_sum += delta;
                if (acc.seen_sum > theta_raw) {
                  acc.dead = true;
                  AddTicker(stats, Ticker::kPrunedByLowerBound);
                }
              }
            });
        AddTicker(stats, Ticker::kPostingEntriesScanned, scanned);
      }
    }
  }
  return ValidateSurvivors(query, theta_raw, stats);
}

std::vector<RankingId> BlockedEngine::ValidateSurvivors(
    const PreparedQuery& query, RawDistance theta_raw, Statistics* stats) {
  AddTicker(stats, Ticker::kCandidates, touched_.size());
  survivors_.clear();
  for (RankingId id : touched_) {
    if (!accs_[id].dead) survivors_.push_back(id);
  }
  // Exact distances through the batched (vector-capable) kernel; ticks
  // kDistanceCalls once per survivor, exactly like the scalar loop this
  // replaced.
  std::vector<RankingId> results;
  validator_.BindQuery(query.view(),
                       static_cast<size_t>(store_->max_item()) + 1);
  validator_.ValidateSpan(*store_, survivors_, theta_raw, &results, stats);
  std::sort(results.begin(), results.end());
  AddTicker(stats, Ticker::kResults, results.size());
  return results;
}

}  // namespace topk
