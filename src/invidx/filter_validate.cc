#include "invidx/filter_validate.h"

#include <algorithm>

#include "core/footrule.h"

namespace topk {

FilterValidateEngine::FilterValidateEngine(const RankingStore* store,
                                           const PlainInvertedIndex* index,
                                           FilterValidateOptions options)
    : store_(store),
      index_(index),
      options_(options),
      visited_(store->size()) {}

std::vector<RankingId> FilterValidateEngine::Query(const PreparedQuery& query,
                                                   RawDistance theta_raw,
                                                   Statistics* stats) {
  TOPK_DCHECK(query.k() == store_->k());
  visited_.NextEpoch();
  candidates_.clear();

  // Filter phase: union of the (possibly drop-reduced) posting lists.
  const std::vector<uint32_t> positions =
      SelectLists(query.view(), theta_raw, options_.drop,
                  [this](ItemId item) { return index_->list_length(item); },
                  stats);
  for (uint32_t pos : positions) {
    const auto list = index_->list(query.view()[pos]);
    AddTicker(stats, Ticker::kPostingEntriesScanned, list.size());
    for (RankingId id : list) {
      if (!visited_.TestAndSet(id)) candidates_.push_back(id);
    }
  }
  AddTicker(stats, Ticker::kCandidates, candidates_.size());

  // Validate phase: exact distance per candidate.
  std::vector<RankingId> results;
  const SortedRankingView q = query.sorted_view();
  for (RankingId id : candidates_) {
    AddTicker(stats, Ticker::kDistanceCalls);
    if (FootruleDistance(q, store_->sorted(id)) <= theta_raw) {
      results.push_back(id);
    }
  }
  std::sort(results.begin(), results.end());
  AddTicker(stats, Ticker::kResults, results.size());
  return results;
}

}  // namespace topk
