// Plain inverted index over rankings-as-sets (Section 4 of the paper).
//
// For every item, the index keeps the id-sorted list of rankings containing
// it. This is the filtering workhorse of the F&V family: merging the k
// posting lists of a query's items yields every ranking that overlaps the
// query at all (non-overlapping rankings are at distance dmax and can never
// qualify for theta < dmax).

#ifndef TOPK_INVIDX_PLAIN_INVERTED_INDEX_H_
#define TOPK_INVIDX_PLAIN_INVERTED_INDEX_H_

#include <span>
#include <vector>

#include "core/ranking.h"
#include "core/types.h"

namespace topk {

class PlainInvertedIndex {
 public:
  /// Indexes every ranking in `store`. Posting lists come out id-sorted
  /// because rankings are scanned in id order.
  static PlainInvertedIndex Build(const RankingStore& store);

  /// Indexes only `subset`; posting entries are *positions within subset*
  /// (0-based), not global ranking ids. The coarse index uses this to index
  /// medoids under their partition number.
  static PlainInvertedIndex BuildSubset(const RankingStore& store,
                                        std::span<const RankingId> subset);

  /// Posting list for `item`; empty for items never indexed.
  std::span<const RankingId> list(ItemId item) const {
    if (item >= lists_.size()) return {};
    return lists_[item];
  }

  size_t list_length(ItemId item) const { return list(item).size(); }

  /// Number of indexed rankings (candidate ids are < this).
  size_t num_indexed() const { return num_indexed_; }

  /// Total posting entries across all lists.
  size_t num_entries() const { return num_entries_; }

  /// Heap bytes (posting storage + directory), for Table 6 reporting.
  size_t MemoryUsage() const;

 private:
  static PlainInvertedIndex BuildImpl(const RankingStore& store,
                                      std::span<const RankingId> subset,
                                      bool use_subset_positions);

  std::vector<std::vector<RankingId>> lists_;
  size_t num_indexed_ = 0;
  size_t num_entries_ = 0;
};

}  // namespace topk

#endif  // TOPK_INVIDX_PLAIN_INVERTED_INDEX_H_
