// Plain inverted index over rankings-as-sets (Section 4 of the paper).
//
// For every item, the index keeps the id-sorted list of rankings containing
// it. This is the filtering workhorse of the F&V family: merging the k
// posting lists of a query's items yields every ranking that overlaps the
// query at all (non-overlapping rankings are at distance dmax and can never
// qualify for theta < dmax).
//
// Postings live in the shared CSR arena (kernel/posting_arena.h): one
// contiguous entry buffer plus an offsets directory, so probing a list is
// an offset lookup, not a vector dereference, and MemoryUsage() is exact.

#ifndef TOPK_INVIDX_PLAIN_INVERTED_INDEX_H_
#define TOPK_INVIDX_PLAIN_INVERTED_INDEX_H_

#include <span>

#include "core/ranking.h"
#include "core/types.h"
#include "kernel/posting_arena.h"

namespace topk {

class PlainInvertedIndex {
 public:
  /// Posting lists are id-sorted (builds scan rankings in id order, and
  /// BuildSubset emits ascending subset positions): FilterPhase may take
  /// its sorted-merge fast path over them.
  static constexpr bool kIdSortedLists = true;

  /// Indexes every ranking in `store`. Posting lists come out id-sorted
  /// because rankings are scanned in id order.
  static PlainInvertedIndex Build(const RankingStore& store);

  /// Indexes only `subset`; posting entries are *positions within subset*
  /// (0-based), not global ranking ids. The coarse index uses this to index
  /// medoids under their partition number.
  static PlainInvertedIndex BuildSubset(const RankingStore& store,
                                        std::span<const RankingId> subset);

  /// Posting list for `item`; empty for items never indexed.
  std::span<const RankingId> list(ItemId item) const {
    return arena_.list(item);
  }

  size_t list_length(ItemId item) const { return arena_.list_length(item); }

  /// Number of indexed rankings (candidate ids are < this).
  size_t num_indexed() const { return num_indexed_; }

  /// Total posting entries across all lists.
  size_t num_entries() const { return arena_.num_entries(); }

  /// Exact heap bytes (CSR entry buffer + offsets directory):
  /// num_entries() * sizeof(RankingId) +
  /// (max_item + 2) * sizeof(uint32_t), no capacity slack.
  size_t MemoryUsage() const { return arena_.MemoryUsage(); }

  const PostingArena<RankingId>& arena() const { return arena_; }

 private:
  static PlainInvertedIndex BuildImpl(const RankingStore& store,
                                      std::span<const RankingId> subset,
                                      bool use_subset_positions);

  PostingArena<RankingId> arena_;
  size_t num_indexed_ = 0;
};

}  // namespace topk

#endif  // TOPK_INVIDX_PLAIN_INVERTED_INDEX_H_
