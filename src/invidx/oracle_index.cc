#include "invidx/oracle_index.h"

#include "core/footrule.h"

namespace topk {

OracleIndex OracleIndex::Build(
    const RankingStore* store,
    std::vector<std::vector<RankingId>> true_results) {
  OracleIndex index;
  index.store_ = store;
  index.lists_ = std::move(true_results);
  return index;
}

OracleIndex OracleIndex::BuildByScan(const RankingStore* store,
                                     std::span<const PreparedQuery> queries,
                                     RawDistance theta_raw) {
  std::vector<std::vector<RankingId>> lists(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const SortedRankingView q = queries[i].sorted_view();
    for (RankingId id = 0; id < store->size(); ++id) {
      if (FootruleDistance(q, store->sorted(id)) <= theta_raw) {
        lists[i].push_back(id);
      }
    }
  }
  return Build(store, std::move(lists));
}

std::vector<RankingId> OracleIndex::Query(size_t query_index,
                                          const PreparedQuery& query,
                                          RawDistance theta_raw,
                                          Statistics* stats) const {
  TOPK_DCHECK(query_index < lists_.size());
  const SortedRankingView q = query.sorted_view();
  std::vector<RankingId> results;
  results.reserve(lists_[query_index].size());
  for (RankingId id : lists_[query_index]) {
    AddTicker(stats, Ticker::kDistanceCalls);
    if (FootruleDistance(q, store_->sorted(id)) <= theta_raw) {
      results.push_back(id);
    }
  }
  AddTicker(stats, Ticker::kResults, results.size());
  return results;
}

size_t OracleIndex::MemoryUsage() const {
  size_t bytes = lists_.capacity() * sizeof(std::vector<RankingId>);
  for (const auto& list : lists_) bytes += list.capacity() * sizeof(RankingId);
  return bytes;
}

}  // namespace topk
