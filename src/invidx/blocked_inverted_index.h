// Blocked inverted index (Section 6.3).
//
// Each posting list is sorted by rank (then id), so all entries where an
// item appears at rank j form a contiguous block B_item@j. A secondary
// directory of k+1 offsets per list addresses blocks directly. A query can
// then skip blocks whose partial distance |j - q(item)| already exceeds
// theta without scanning them.

#ifndef TOPK_INVIDX_BLOCKED_INVERTED_INDEX_H_
#define TOPK_INVIDX_BLOCKED_INVERTED_INDEX_H_

#include <span>
#include <vector>

#include "core/ranking.h"
#include "core/statistics.h"
#include "core/types.h"
#include "invidx/augmented_inverted_index.h"
#include "invidx/drop_policy.h"
#include "kernel/footrule_batch.h"
#include "kernel/posting_arena.h"

namespace topk {

class BlockedInvertedIndex {
 public:
  /// Lists are rank-major, NOT id-sorted: FilterPhase must keep its
  /// general dedup loop over them.
  static constexpr bool kIdSortedLists = false;

  static BlockedInvertedIndex Build(const RankingStore& store);

  /// The (k+1)-cursor block directory of `item`'s list (block j spans
  /// list(item)[dir[j] .. dir[j+1])), or nullptr for items outside the
  /// directory. This is what BlockRangeSweep (kernel/block_sweep.h) walks.
  const uint32_t* block_offsets(ItemId item) const {
    if (item >= arena_.num_lists()) return nullptr;
    return &offsets_[static_cast<size_t>(item) * (k_ + 1)];
  }

  /// Entries of item's block at rank j (possibly empty).
  std::span<const AugmentedEntry> Block(ItemId item, Rank j) const {
    const uint32_t* off = block_offsets(item);
    if (off == nullptr) return {};
    return arena_.list(item).subspan(off[j], off[j + 1] - off[j]);
  }

  /// Entries of item with rank in [lo, hi] (contiguous by construction).
  std::span<const AugmentedEntry> BlockRange(ItemId item, Rank lo,
                                             Rank hi) const {
    const uint32_t* off = block_offsets(item);
    if (off == nullptr) return {};
    return arena_.list(item).subspan(off[lo], off[hi + 1] - off[lo]);
  }

  std::span<const AugmentedEntry> list(ItemId item) const {
    return arena_.list(item);
  }

  size_t list_length(ItemId item) const { return arena_.list_length(item); }
  uint32_t k() const { return k_; }
  size_t num_indexed() const { return num_indexed_; }
  size_t num_entries() const { return arena_.num_entries(); }
  /// Exact heap bytes: CSR arena + the per-item (k+1)-offset block
  /// directory.
  size_t MemoryUsage() const {
    return arena_.MemoryUsage() + offsets_.capacity() * sizeof(uint32_t);
  }

  const PostingArena<AugmentedEntry>& arena() const { return arena_; }

 private:
  uint32_t k_ = 0;
  size_t num_indexed_ = 0;
  PostingArena<AugmentedEntry> arena_;
  std::vector<uint32_t> offsets_;  // (#items) * (k+1) block directory
};

struct BlockedOptions {
  DropMode drop = DropMode::kNone;
  /// Process blocks in rounds of increasing partial distance delta and stop
  /// once even an unseen candidate's cheapest completion exceeds theta (the
  /// paper's "terminate further scheduling of blocks"). Automatically
  /// disabled under +Drop: dropped lists may hide common items from the
  /// termination argument (see DESIGN.md).
  bool scheduled = true;
};

/// Blocked+Prune / Blocked+Prune+Drop query processing. Surviving
/// candidates are validated exactly through the batched kernel validator:
/// partial sums over an index with skipped blocks cannot prove membership,
/// only rule it out.
///
/// Windowed mode walks each kept list's block directory through
/// BlockRangeSweep with a *discovery-tightened* window: a candidate first
/// reaching the scan at kept list t has already paid (k - t') for every
/// kept list t' processed before it (it appeared in none of them), so
/// only blocks with |j - t| <= theta - processed_absent can still
/// discover results — and once that budget goes negative the remaining
/// lists are skipped outright. Threshold-sound with or without +Drop; the
/// proof lives in DESIGN.md ("Block-skipping sweep").
class BlockedEngine {
 public:
  BlockedEngine(const RankingStore* store, const BlockedInvertedIndex* index,
                BlockedOptions options = {});

  std::vector<RankingId> Query(const PreparedQuery& query,
                               RawDistance theta_raw,
                               Statistics* stats = nullptr);

 private:
  struct Accumulator {
    uint32_t epoch = 0;
    RawDistance seen_sum = 0;
    RawDistance seen_q_cost = 0;
    bool dead = false;
  };

  std::vector<RankingId> QueryWindowed(const PreparedQuery& query,
                                       RawDistance theta_raw,
                                       Statistics* stats);
  std::vector<RankingId> QueryScheduled(const PreparedQuery& query,
                                        RawDistance theta_raw,
                                        Statistics* stats);
  std::vector<RankingId> ValidateSurvivors(const PreparedQuery& query,
                                           RawDistance theta_raw,
                                           Statistics* stats);

  const RankingStore* store_;
  const BlockedInvertedIndex* index_;
  BlockedOptions options_;
  std::vector<Accumulator> accs_;
  std::vector<RankingId> touched_;
  std::vector<RankingId> survivors_;  // non-dead touched ids, per query
  FootruleValidator validator_;
  uint32_t epoch_ = 0;
};

}  // namespace topk

#endif  // TOPK_INVIDX_BLOCKED_INVERTED_INDEX_H_
