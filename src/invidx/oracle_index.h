// Minimal F&V oracle (Section 7, "Algorithms under Investigation").
//
// For each workload query the oracle has a single materialized posting list
// containing exactly the true result rankings for the query's threshold.
// Query processing is one lookup plus one Footrule evaluation per true
// result — the paper uses its runtime as a lower bound for every
// filter-and-validate style algorithm.

#ifndef TOPK_INVIDX_ORACLE_INDEX_H_
#define TOPK_INVIDX_ORACLE_INDEX_H_

#include <span>
#include <vector>

#include "core/ranking.h"
#include "core/statistics.h"
#include "core/types.h"

namespace topk {

class OracleIndex {
 public:
  /// Builds from precomputed per-query true-result lists (any exact
  /// algorithm may produce them; they are what would be materialized).
  static OracleIndex Build(const RankingStore* store,
                           std::vector<std::vector<RankingId>> true_results);

  /// Builds by brute-force scanning the store for each query.
  static OracleIndex BuildByScan(const RankingStore* store,
                                 std::span<const PreparedQuery> queries,
                                 RawDistance theta_raw);

  /// Processes workload query `query_index`: validates each materialized
  /// ranking with a Footrule call, as the paper's cost accounting demands.
  std::vector<RankingId> Query(size_t query_index, const PreparedQuery& query,
                               RawDistance theta_raw,
                               Statistics* stats = nullptr) const;

  size_t num_queries() const { return lists_.size(); }
  size_t MemoryUsage() const;

 private:
  const RankingStore* store_ = nullptr;
  std::vector<std::vector<RankingId>> lists_;
};

}  // namespace topk

#endif  // TOPK_INVIDX_ORACLE_INDEX_H_
