// Epoch-stamped membership set over dense ids.
//
// The classical database trick for per-query candidate deduplication:
// instead of clearing an n-bit bitmap before every query, each query bumps
// an epoch counter and a slot counts as "set" only when its stamp equals
// the current epoch. Reset is O(1); memory is 4 bytes per possible id.

#ifndef TOPK_INVIDX_VISITED_SET_H_
#define TOPK_INVIDX_VISITED_SET_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/status.h"
#include "kernel/simd.h"

namespace topk {

class VisitedSet {
 public:
  explicit VisitedSet(size_t capacity) : stamps_(capacity, 0) {}

  /// Starts a fresh membership set; all slots become unset.
  void NextEpoch() {
    if (++epoch_ == 0) {  // wrapped: lazily clear and restart
      std::fill(stamps_.begin(), stamps_.end(), 0);
      epoch_ = 1;
    }
  }

  /// Grows capacity (ids must stay below capacity).
  void EnsureCapacity(size_t capacity) {
    if (capacity > stamps_.size()) stamps_.resize(capacity, 0);
  }

  bool Test(uint32_t id) const {
    TOPK_DCHECK(id < stamps_.size());
    return stamps_[id] == epoch_;
  }

  /// Returns whether `id` was already set, setting it either way.
  bool TestAndSet(uint32_t id) {
    TOPK_DCHECK(id < stamps_.size());
    if (stamps_[id] == epoch_) return true;
    stamps_[id] = epoch_;
    return false;
  }

  /// Warms the cache line holding `id`'s stamp word ahead of a
  /// TestAndSet — the filter phase's stamp probes are its only randomly
  /// scattered accesses. Harmless for ids beyond capacity (no-op).
  void Prefetch(uint32_t id) const {
    if (id < stamps_.size()) PrefetchRead(stamps_.data() + id);
  }

  size_t capacity() const { return stamps_.size(); }

 private:
  std::vector<uint32_t> stamps_;
  uint32_t epoch_ = 0;
};

}  // namespace topk

#endif  // TOPK_INVIDX_VISITED_SET_H_
