// Posting-list dropping driven by the minimum-overlap bound (Section 6.1).
//
// A result within raw distance theta of the query must share at least
// w = MinOverlap(k, theta) items with it, so by pigeonhole it is guaranteed
// to appear in any k - w + 1 of the query's k posting lists (conservative
// policy). The paper's Lemma 2 refines this to k - w lists when at least
// one accessed list belongs to an item in the query's top-w positions.
//
// Correctness correction (documented in DESIGN.md and verified by
// exhaustive tests): the k - w refinement is only sound while
// theta <= L(k, w) + 1. Overlap-w results are forced into the "all common
// items in the top-w positions of both rankings" configuration only up to
// that threshold; the cheapest non-top configuration costs exactly
// L(k, w) + 2, so for larger theta within the same w-bracket a result can
// evade every accessed list. SelectLists therefore applies the refinement
// only when it is provably safe and otherwise falls back to the
// conservative policy.

#ifndef TOPK_INVIDX_DROP_POLICY_H_
#define TOPK_INVIDX_DROP_POLICY_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/ranking.h"
#include "core/statistics.h"
#include "core/types.h"

namespace topk {

enum class DropMode {
  /// Access all k lists.
  kNone,
  /// Access k - w + 1 lists (always sound).
  kConservative,
  /// Access k - w lists with the top-w guarantee where sound; conservative
  /// elsewhere (Lemma 2 with the correctness guard).
  kPositionRefined,
};

const char* DropModeName(DropMode mode);

/// Returns the query positions (ranks) whose posting lists must be
/// accessed, in ascending position order. `list_length(item)` supplies the
/// posting-list length so the longest lists are dropped first — the paper's
/// recommendation, since dropping long lists saves the most scanning.
std::vector<uint32_t> SelectLists(
    RankingView query, RawDistance theta_raw, DropMode mode,
    const std::function<size_t(ItemId)>& list_length,
    Statistics* stats = nullptr);

}  // namespace topk

#endif  // TOPK_INVIDX_DROP_POLICY_H_
