// Rank-augmented inverted index (Section 6.2).
//
// Posting entries carry the rank at which the item appears, so a query can
// compute Footrule contributions directly from the lists without touching
// the stored rankings. Lists are id-sorted, enabling both the ListMerge
// merge-join and the NRA-style List-at-a-Time processing.

#ifndef TOPK_INVIDX_AUGMENTED_INVERTED_INDEX_H_
#define TOPK_INVIDX_AUGMENTED_INVERTED_INDEX_H_

#include <span>

#include "core/posting_entry.h"  // IWYU pragma: export (AugmentedEntry)
#include "core/ranking.h"
#include "core/types.h"
#include "kernel/posting_arena.h"

namespace topk {

/// Two-pass counting build of the rank-augmented CSR arena over the whole
/// store (lists id-sorted, directory sized max_item + 1). Shared by the
/// augmented and blocked indexes, which differ only in post-processing.
PostingArena<AugmentedEntry> BuildAugmentedArena(const RankingStore& store);

class AugmentedInvertedIndex {
 public:
  /// Lists are id-sorted: FilterPhase may take its sorted-merge fast path.
  static constexpr bool kIdSortedLists = true;

  static AugmentedInvertedIndex Build(const RankingStore& store);

  /// Id-sorted posting list for `item` (empty if never indexed).
  std::span<const AugmentedEntry> list(ItemId item) const {
    return arena_.list(item);
  }

  size_t list_length(ItemId item) const { return arena_.list_length(item); }
  size_t num_indexed() const { return num_indexed_; }
  size_t num_entries() const { return arena_.num_entries(); }
  /// Exact heap bytes of the CSR arena (see kernel/posting_arena.h).
  size_t MemoryUsage() const { return arena_.MemoryUsage(); }

  const PostingArena<AugmentedEntry>& arena() const { return arena_; }

 private:
  PostingArena<AugmentedEntry> arena_;
  size_t num_indexed_ = 0;
};

}  // namespace topk

#endif  // TOPK_INVIDX_AUGMENTED_INVERTED_INDEX_H_
