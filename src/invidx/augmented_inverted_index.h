// Rank-augmented inverted index (Section 6.2).
//
// Posting entries carry the rank at which the item appears, so a query can
// compute Footrule contributions directly from the lists without touching
// the stored rankings. Lists are id-sorted, enabling both the ListMerge
// merge-join and the NRA-style List-at-a-Time processing.

#ifndef TOPK_INVIDX_AUGMENTED_INVERTED_INDEX_H_
#define TOPK_INVIDX_AUGMENTED_INVERTED_INDEX_H_

#include <span>
#include <vector>

#include "core/ranking.h"
#include "core/types.h"

namespace topk {

struct AugmentedEntry {
  RankingId id;
  Rank rank;
};

class AugmentedInvertedIndex {
 public:
  static AugmentedInvertedIndex Build(const RankingStore& store);

  /// Id-sorted posting list for `item` (empty if never indexed).
  std::span<const AugmentedEntry> list(ItemId item) const {
    if (item >= lists_.size()) return {};
    return lists_[item];
  }

  size_t list_length(ItemId item) const { return list(item).size(); }
  size_t num_indexed() const { return num_indexed_; }
  size_t num_entries() const { return num_entries_; }
  size_t MemoryUsage() const;

 private:
  std::vector<std::vector<AugmentedEntry>> lists_;
  size_t num_indexed_ = 0;
  size_t num_entries_ = 0;
};

}  // namespace topk

#endif  // TOPK_INVIDX_AUGMENTED_INVERTED_INDEX_H_
