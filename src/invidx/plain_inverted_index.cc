#include "invidx/plain_inverted_index.h"

#include <numeric>

namespace topk {

PlainInvertedIndex PlainInvertedIndex::Build(const RankingStore& store) {
  std::vector<RankingId> all(store.size());
  std::iota(all.begin(), all.end(), 0);
  return BuildImpl(store, all, /*use_subset_positions=*/false);
}

PlainInvertedIndex PlainInvertedIndex::BuildSubset(
    const RankingStore& store, std::span<const RankingId> subset) {
  return BuildImpl(store, subset, /*use_subset_positions=*/true);
}

PlainInvertedIndex PlainInvertedIndex::BuildImpl(
    const RankingStore& store, std::span<const RankingId> subset,
    bool use_subset_positions) {
  PlainInvertedIndex index;
  index.lists_.resize(static_cast<size_t>(store.max_item()) + 1);
  index.num_indexed_ = subset.size();
  for (size_t pos = 0; pos < subset.size(); ++pos) {
    const RankingView v = store.view(subset[pos]);
    const RankingId entry =
        use_subset_positions ? static_cast<RankingId>(pos) : subset[pos];
    for (ItemId item : v.items()) {
      index.lists_[item].push_back(entry);
    }
    index.num_entries_ += v.k();
  }
  return index;
}

size_t PlainInvertedIndex::MemoryUsage() const {
  size_t bytes = lists_.capacity() * sizeof(std::vector<RankingId>);
  for (const auto& list : lists_) {
    bytes += list.capacity() * sizeof(RankingId);
  }
  return bytes;
}

}  // namespace topk
