#include "invidx/plain_inverted_index.h"

#include <numeric>
#include <vector>

namespace topk {

PlainInvertedIndex PlainInvertedIndex::Build(const RankingStore& store) {
  std::vector<RankingId> all(store.size());
  std::iota(all.begin(), all.end(), 0);
  return BuildImpl(store, all, /*use_subset_positions=*/false);
}

PlainInvertedIndex PlainInvertedIndex::BuildSubset(
    const RankingStore& store, std::span<const RankingId> subset) {
  return BuildImpl(store, subset, /*use_subset_positions=*/true);
}

PlainInvertedIndex PlainInvertedIndex::BuildImpl(
    const RankingStore& store, std::span<const RankingId> subset,
    bool use_subset_positions) {
  PlainInvertedIndex index;
  index.num_indexed_ = subset.size();
  PostingArenaBuilder<RankingId> builder(
      static_cast<size_t>(store.max_item()) + 1);
  for (RankingId id : subset) {
    for (ItemId item : store.view(id).items()) builder.Count(item);
  }
  builder.FinishCounting();
  // Rankings are visited in subset order, so every list comes out sorted
  // by entry (ascending ids / subset positions), as before.
  for (size_t pos = 0; pos < subset.size(); ++pos) {
    const RankingId entry =
        use_subset_positions ? static_cast<RankingId>(pos) : subset[pos];
    for (ItemId item : store.view(subset[pos]).items()) {
      builder.Append(item, entry);
    }
  }
  index.arena_ = std::move(builder).Build();
  return index;
}

}  // namespace topk
