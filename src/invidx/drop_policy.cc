#include "invidx/drop_policy.h"

#include <algorithm>
#include <numeric>

#include "core/bounds.h"

namespace topk {

const char* DropModeName(DropMode mode) {
  switch (mode) {
    case DropMode::kNone:
      return "none";
    case DropMode::kConservative:
      return "conservative";
    case DropMode::kPositionRefined:
      return "position_refined";
  }
  return "unknown";
}

std::vector<uint32_t> SelectLists(
    RankingView query, RawDistance theta_raw, DropMode mode,
    const std::function<size_t(ItemId)>& list_length, Statistics* stats) {
  const uint32_t k = query.k();
  std::vector<uint32_t> all(k);
  std::iota(all.begin(), all.end(), 0);

  const uint32_t w = MinOverlap(k, theta_raw);
  if (mode == DropMode::kNone || w <= 1) {
    // w == 0 would mean even disjoint rankings qualify (theta >= dmax) and
    // an inverted index cannot find those at all; w == 1 permits no drops.
    return all;
  }

  // Positions ordered by posting-list length, longest first: those are the
  // most profitable to drop.
  std::vector<uint32_t> by_length(all);
  std::stable_sort(by_length.begin(), by_length.end(),
                   [&](uint32_t a, uint32_t b) {
                     return list_length(query[a]) > list_length(query[b]);
                   });

  // The refinement may drop one more list than the conservative policy but
  // is only sound below the configuration-forcing threshold (see header).
  const bool refinement_sound =
      mode == DropMode::kPositionRefined &&
      theta_raw <= MinDistanceForOverlap(k, w) + 1;
  const uint32_t keep =
      refinement_sound ? std::max<uint32_t>(1, k - w) : (k - w + 1);

  // Greedily drop the longest lists. Under the refined policy at least one
  // kept list must come from the query's top-w positions; skip a drop that
  // would eliminate the last such position.
  std::vector<bool> dropped(k, false);
  uint32_t top_w_kept = std::min(w, k);  // positions 0..w-1 still kept
  uint32_t num_dropped = 0;
  const uint32_t want_dropped = k - keep;
  for (uint32_t pos : by_length) {
    if (num_dropped == want_dropped) break;
    if (refinement_sound && pos < w && top_w_kept == 1) continue;
    dropped[pos] = true;
    if (pos < w) --top_w_kept;
    ++num_dropped;
  }

  std::vector<uint32_t> result;
  result.reserve(keep);
  for (uint32_t pos = 0; pos < k; ++pos) {
    if (!dropped[pos]) result.push_back(pos);
  }
  AddTicker(stats, Ticker::kListsDropped, num_dropped);
  return result;
}

}  // namespace topk
