#include "invidx/augmented_inverted_index.h"

namespace topk {

AugmentedInvertedIndex AugmentedInvertedIndex::Build(
    const RankingStore& store) {
  AugmentedInvertedIndex index;
  index.lists_.resize(static_cast<size_t>(store.max_item()) + 1);
  index.num_indexed_ = store.size();
  for (RankingId id = 0; id < store.size(); ++id) {
    const RankingView v = store.view(id);
    for (Rank p = 0; p < v.k(); ++p) {
      index.lists_[v[p]].push_back(AugmentedEntry{id, p});
    }
    index.num_entries_ += v.k();
  }
  return index;
}

size_t AugmentedInvertedIndex::MemoryUsage() const {
  size_t bytes = lists_.capacity() * sizeof(std::vector<AugmentedEntry>);
  for (const auto& list : lists_) {
    bytes += list.capacity() * sizeof(AugmentedEntry);
  }
  return bytes;
}

}  // namespace topk
