#include "invidx/augmented_inverted_index.h"

namespace topk {

PostingArena<AugmentedEntry> BuildAugmentedArena(const RankingStore& store) {
  PostingArenaBuilder<AugmentedEntry> builder(
      static_cast<size_t>(store.max_item()) + 1);
  for (RankingId id = 0; id < store.size(); ++id) {
    for (ItemId item : store.view(id).items()) builder.Count(item);
  }
  builder.FinishCounting();
  // Ascending-id visit order keeps every list id-sorted.
  for (RankingId id = 0; id < store.size(); ++id) {
    const RankingView v = store.view(id);
    for (Rank p = 0; p < v.k(); ++p) {
      builder.Append(v[p], AugmentedEntry{id, p});
    }
  }
  return std::move(builder).Build();
}

AugmentedInvertedIndex AugmentedInvertedIndex::Build(
    const RankingStore& store) {
  AugmentedInvertedIndex index;
  index.num_indexed_ = store.size();
  index.arena_ = BuildAugmentedArena(store);
  return index;
}

}  // namespace topk
