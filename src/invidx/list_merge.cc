#include "invidx/list_merge.h"

#include "core/bounds.h"

namespace topk {

std::vector<RankingId> ListMergeEngine::Query(const PreparedQuery& query,
                                              RawDistance theta_raw,
                                              Statistics* stats) {
  const uint32_t k = query.k();
  const RankingView q = query.view();

  struct Cursor {
    std::span<const AugmentedEntry> list;
    size_t pos = 0;
    Rank query_rank = 0;
  };
  std::vector<Cursor> cursors;
  cursors.reserve(k);
  for (Rank j = 0; j < k; ++j) {
    cursors.push_back(Cursor{index_->list(q[j]), 0, j});
  }

  const RawDistance half_absent = AbsentSuffixCost(k, 0);  // k(k+1)/2
  std::vector<RankingId> results;
  // Classic k-way merge: each round processes the smallest ranking id under
  // any cursor, aggregating all of that ranking's entries at once. k is
  // tiny, so a linear cursor scan beats a heap.
  for (;;) {
    RankingId current = kInvalidRankingId;
    for (const Cursor& c : cursors) {
      if (c.pos < c.list.size() && c.list[c.pos].id < current) {
        current = c.list[c.pos].id;
      }
    }
    if (current == kInvalidRankingId) break;

    RawDistance sum_abs = 0;
    RawDistance covered = 0;  // sum (k - j) + (k - r) over seen pairs
    for (Cursor& c : cursors) {
      if (c.pos < c.list.size() && c.list[c.pos].id == current) {
        const Rank r = c.list[c.pos].rank;
        const Rank j = c.query_rank;
        sum_abs += r > j ? r - j : j - r;
        covered += (k - j) + (k - r);
        ++c.pos;
        AddTicker(stats, Ticker::kPostingEntriesScanned);
      }
    }
    const RawDistance distance = sum_abs + 2 * half_absent - covered;
    if (distance <= theta_raw) results.push_back(current);
    AddTicker(stats, Ticker::kCandidates);
  }
  AddTicker(stats, Ticker::kResults, results.size());
  return results;  // already id-sorted by the merge order
}

}  // namespace topk
