#include "cluster/bk_partitioner.h"

#include <algorithm>

#include "core/footrule.h"

namespace topk {

const char* BkPartitionModeName(BkPartitionMode mode) {
  switch (mode) {
    case BkPartitionMode::kStrict:
      return "strict";
    case BkPartitionMode::kSubtree:
      return "subtree";
  }
  return "unknown";
}

namespace {

struct Frame {
  uint32_t node;
  size_t partition;       // index into partitioning.partitions
  RawDistance bound;      // upper bound on d(node, partition medoid)
};

}  // namespace

Partitioning PartitionBkTree(const BkTree& tree, RawDistance theta_c_raw,
                             BkPartitionMode mode, Statistics* stats) {
  Partitioning out;
  if (tree.empty()) return out;
  const RankingStore& store = tree.store();
  const auto& nodes = tree.nodes();

  // Iterative DFS. The root founds the first partition; every visited node
  // either joins its parent's partition or founds its own, and its
  // children are processed under whichever partition it ended up in.
  std::vector<Frame> stack;

  auto found_partition = [&](RankingId medoid) -> size_t {
    out.partitions.push_back(Partition{medoid, {medoid}, 0});
    return out.partitions.size() - 1;
  };

  const size_t root_partition = found_partition(nodes[0].id);
  for (uint32_t child = nodes[0].first_child; child != BkTree::kNoNode;
       child = nodes[child].next_sibling) {
    stack.push_back(Frame{child, root_partition, nodes[child].parent_dist});
  }

  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    const auto& node = nodes[frame.node];

    bool joins = false;
    RawDistance medoid_dist = frame.bound;
    if (mode == BkPartitionMode::kStrict) {
      // Membership decided by the true distance to the medoid.
      AddTicker(stats, Ticker::kDistanceCalls);
      medoid_dist = FootruleDistance(
          store.sorted(node.id),
          store.sorted(out.partitions[frame.partition].medoid));
      joins = medoid_dist <= theta_c_raw;
    } else {
      // Membership decided by the edge to the BK parent alone (the paper's
      // rule); frame.bound carries the path-sum radius bound.
      joins = node.parent_dist <= theta_c_raw;
    }

    size_t partition = frame.partition;
    if (joins) {
      Partition& p = out.partitions[frame.partition];
      p.members.push_back(node.id);
      p.radius = std::max(p.radius, medoid_dist);
    } else {
      partition = found_partition(node.id);
    }

    for (uint32_t child = node.first_child; child != BkTree::kNoNode;
         child = nodes[child].next_sibling) {
      // Path-sum bound: d(child, medoid) <= d(child, node) + bound(node).
      const RawDistance child_bound =
          joins ? medoid_dist + nodes[child].parent_dist
                : nodes[child].parent_dist;
      stack.push_back(Frame{child, partition, child_bound});
    }
  }
  return out;
}

Partitioning BkPartition(const RankingStore& store, RawDistance theta_c_raw,
                         BkPartitionMode mode, Statistics* stats) {
  const BkTree tree = BkTree::BuildAll(&store, stats);
  return PartitionBkTree(tree, theta_c_raw, mode, stats);
}

}  // namespace topk
