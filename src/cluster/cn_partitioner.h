// Chavez-Navarro random-medoid partitioning (Pattern Recognition Letters
// 2005), the clustering model the paper's Section 5 cost analysis assumes.
//
// Medoids are drawn uniformly at random from the not-yet-assigned
// rankings; each new medoid absorbs every still-unassigned ranking within
// theta_C of it; the process repeats until nothing is left. Partition
// radii are <= theta_C by construction, so Lemma 1 applies directly.
//
// Cost is O(M * n) distance computations for M medoids — quadratic-ish,
// which is exactly why the paper uses the BK-tree extraction in practice;
// this implementation exists to validate the cost model's medoid-count
// estimate (Section 5) and as the ablation baseline.

#ifndef TOPK_CLUSTER_CN_PARTITIONER_H_
#define TOPK_CLUSTER_CN_PARTITIONER_H_

#include "cluster/partitioner.h"
#include "core/ranking.h"
#include "core/rng.h"
#include "core/statistics.h"

namespace topk {

Partitioning CnPartition(const RankingStore& store, RawDistance theta_c_raw,
                         Rng* rng, Statistics* stats = nullptr);

}  // namespace topk

#endif  // TOPK_CLUSTER_CN_PARTITIONER_H_
