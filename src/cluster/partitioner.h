// Partitioning of a ranking collection into medoid-anchored groups
// (Section 4.1 of the paper).
//
// A Partitioning assigns every ranking to exactly one Partition; the
// partition's medoid represents its members in the coarse index's inverted
// index, and the recorded radius upper-bounds every member's distance to
// the medoid. The radius is what makes Lemma 1 queries exact: medoids are
// retrieved with threshold theta + radius.

#ifndef TOPK_CLUSTER_PARTITIONER_H_
#define TOPK_CLUSTER_PARTITIONER_H_

#include <algorithm>
#include <vector>

#include "core/types.h"

namespace topk {

struct Partition {
  RankingId medoid = kInvalidRankingId;
  /// Members including the medoid itself.
  std::vector<RankingId> members;
  /// Upper bound on max distance from the medoid to any member. Strict
  /// partitioners guarantee radius <= theta_C; the subtree partitioner may
  /// exceed it (see bk_partitioner.h).
  RawDistance radius = 0;
};

struct Partitioning {
  std::vector<Partition> partitions;

  size_t total_members() const {
    size_t total = 0;
    for (const Partition& p : partitions) total += p.members.size();
    return total;
  }
  RawDistance max_radius() const {
    RawDistance r = 0;
    for (const Partition& p : partitions) r = std::max(r, p.radius);
    return r;
  }
};

}  // namespace topk

#endif  // TOPK_CLUSTER_PARTITIONER_H_
