#include "cluster/cn_partitioner.h"

#include <algorithm>
#include <numeric>

#include "core/footrule.h"

namespace topk {

Partitioning CnPartition(const RankingStore& store, RawDistance theta_c_raw,
                         Rng* rng, Statistics* stats) {
  Partitioning out;
  const size_t n = store.size();
  if (n == 0) return out;

  // Unassigned ids, consumed by swap-and-shrink so each round scans only
  // what is still free.
  std::vector<RankingId> free_ids(n);
  std::iota(free_ids.begin(), free_ids.end(), 0);

  while (!free_ids.empty()) {
    // Random medoid among the unassigned.
    const size_t pick = rng->Below(free_ids.size());
    const RankingId medoid = free_ids[pick];
    free_ids[pick] = free_ids.back();
    free_ids.pop_back();

    Partition partition;
    partition.medoid = medoid;
    partition.members.push_back(medoid);

    const SortedRankingView mv = store.sorted(medoid);
    size_t write = 0;
    for (size_t read = 0; read < free_ids.size(); ++read) {
      const RankingId candidate = free_ids[read];
      AddTicker(stats, Ticker::kDistanceCalls);
      const RawDistance d = FootruleDistance(mv, store.sorted(candidate));
      if (d <= theta_c_raw) {
        partition.members.push_back(candidate);
        partition.radius = std::max(partition.radius, d);
      } else {
        free_ids[write++] = candidate;
      }
    }
    free_ids.resize(write);
    out.partitions.push_back(std::move(partition));
  }
  return out;
}

}  // namespace topk
