// BK-tree-guided partition extraction (Section 4.1, Figure 1).
//
// A BK-tree is built over the collection, then traversed to carve
// partitions. Two membership rules are provided:
//
//  kStrict  — a node joins the current medoid's partition iff its *actual*
//             distance to the medoid is <= theta_C (one extra Footrule
//             call per node); otherwise it founds a new partition and the
//             traversal continues beneath it with the new medoid. This
//             enforces radius <= theta_C, the precondition of the paper's
//             Lemma 1, by construction.
//
//  kSubtree — the paper's literal reading of Figure 1: children at edge
//             distance <= theta_C join the parent's partition *with their
//             whole subtrees*. No extra distance computations, but a deep
//             descendant may lie farther than theta_C from the medoid (a
//             BK edge only bounds the distance to the immediate parent).
//             Exactness is preserved anyway because the partition radius
//             is tracked as the path-sum of edge distances from the medoid
//             (a triangle-inequality upper bound), and the coarse index
//             retrieves medoids with theta + radius.

#ifndef TOPK_CLUSTER_BK_PARTITIONER_H_
#define TOPK_CLUSTER_BK_PARTITIONER_H_

#include "cluster/partitioner.h"
#include "core/ranking.h"
#include "core/statistics.h"
#include "metric/bk_tree.h"

namespace topk {

enum class BkPartitionMode { kStrict, kSubtree };

const char* BkPartitionModeName(BkPartitionMode mode);

/// Carves partitions out of an already-built BK-tree covering the store.
Partitioning PartitionBkTree(const BkTree& tree, RawDistance theta_c_raw,
                             BkPartitionMode mode,
                             Statistics* stats = nullptr);

/// Convenience: builds the BK-tree over the whole store, then partitions.
Partitioning BkPartition(const RankingStore& store, RawDistance theta_c_raw,
                         BkPartitionMode mode, Statistics* stats = nullptr);

}  // namespace topk

#endif  // TOPK_CLUSTER_BK_PARTITIONER_H_
