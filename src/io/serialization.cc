#include "io/serialization.h"

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "core/failpoint.h"

namespace topk {

namespace {

constexpr uint32_t kMagic = 0x544f504bu;  // "TOPK"
constexpr uint32_t kVersion = 1;
constexpr uint32_t kKindRankingStore = 1;
constexpr uint32_t kKindPartitioning = 2;

uint64_t Fnv1a(const uint8_t* data, size_t size) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

/// Little append-only byte buffer with typed writes.
class Writer {
 public:
  template <typename T>
  void Put(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* bytes = reinterpret_cast<const uint8_t*>(&value);
    buffer_.insert(buffer_.end(), bytes, bytes + sizeof(T));
  }
  template <typename T>
  void PutSpan(std::span<const T> values) {
    const auto* bytes = reinterpret_cast<const uint8_t*>(values.data());
    buffer_.insert(buffer_.end(), bytes, bytes + values.size() * sizeof(T));
  }

  Status WriteFile(const std::string& path, uint32_t kind) const {
    // Every fallible call below carries its errno into the Status: "disk
    // full", "read-only filesystem" and "permission denied" are three
    // different operator actions, and the old "short write" collapsed
    // them into one unactionable string.
    std::FILE* raw = TOPK_FAILPOINT("io.serialization.open")
                         ? (errno = EIO, nullptr)
                         : std::fopen(path.c_str(), "wb");
    if (raw == nullptr) {
      return Status::IOErrorFromErrno("open for writing " + path, errno);
    }
    std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(raw, &std::fclose);
    const uint32_t header[3] = {kMagic, kVersion, kind};
    const uint64_t payload_size = buffer_.size();
    const uint64_t checksum = Fnv1a(buffer_.data(), buffer_.size());
    const bool write_failed =
        TOPK_FAILPOINT("io.serialization.write")
            ? (errno = EIO, true)
            : std::fwrite(header, sizeof(header), 1, file.get()) != 1 ||
                  std::fwrite(&payload_size, sizeof(payload_size), 1,
                              file.get()) != 1 ||
                  std::fwrite(&checksum, sizeof(checksum), 1, file.get()) !=
                      1 ||
                  (payload_size > 0 &&
                   std::fwrite(buffer_.data(), buffer_.size(), 1,
                               file.get()) != 1);
    if (write_failed) {
      return Status::IOErrorFromErrno("write " + path, errno);
    }
    // The close flushes stdio's buffer; a failure here (ENOSPC surfacing
    // late) would otherwise vanish with the unique_ptr deleter.
    file.release();
    const bool close_failed = TOPK_FAILPOINT("io.serialization.close")
                                  ? (errno = EIO, true)
                                  : std::fclose(raw) != 0;
    if (close_failed) {
      return Status::IOErrorFromErrno("close " + path, errno);
    }
    return Status::OK();
  }

 private:
  std::vector<uint8_t> buffer_;
};

/// Validated payload reader.
class Reader {
 public:
  static Result<Reader> Open(const std::string& path, uint32_t kind) {
    std::FILE* raw = TOPK_FAILPOINT("io.serialization.read")
                         ? (errno = EIO, nullptr)
                         : std::fopen(path.c_str(), "rb");
    if (raw == nullptr) {
      // NotFound only when the file truly is not there; an EACCES or
      // EIO misreported as NotFound sends callers down their
      // build-it-fresh path against data that still exists.
      if (errno == ENOENT) return Status::NotFound("cannot open: " + path);
      return Status::IOErrorFromErrno("open " + path, errno);
    }
    std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(raw, &std::fclose);
    uint32_t header[3];
    uint64_t payload_size = 0;
    uint64_t checksum = 0;
    if (std::fread(header, sizeof(header), 1, file.get()) != 1 ||
        std::fread(&payload_size, sizeof(payload_size), 1, file.get()) !=
            1 ||
        std::fread(&checksum, sizeof(checksum), 1, file.get()) != 1) {
      // A device error is environmental (retryable elsewhere); a short
      // file is evidence of truncation. Callers branch on the code.
      if (std::ferror(file.get())) {
        return Status::IOErrorFromErrno("read header of " + path, errno);
      }
      return Status::InvalidArgument("truncated header: " + path);
    }
    if (header[0] != kMagic) {
      return Status::InvalidArgument("bad magic (not a topk file): " + path);
    }
    if (header[1] != kVersion) {
      return Status::InvalidArgument("unsupported format version in " +
                                     path);
    }
    if (header[2] != kind) {
      return Status::InvalidArgument("wrong payload kind in " + path);
    }
    // Validate the declared payload size against the actual file size
    // BEFORE allocating: a corrupt/hostile size field must produce a
    // Status, not a multi-gigabyte resize. The file must hold exactly
    // header + payload — trailing bytes are as much corruption as
    // missing ones.
    const long payload_start = std::ftell(file.get());
    if (payload_start < 0 || std::fseek(file.get(), 0, SEEK_END) != 0) {
      return Status::IOErrorFromErrno("size " + path, errno);
    }
    const long file_size = std::ftell(file.get());
    if (file_size < payload_start ||
        static_cast<uint64_t>(file_size - payload_start) != payload_size) {
      return Status::InvalidArgument(
          "declared payload size does not match the file: " + path);
    }
    if (std::fseek(file.get(), payload_start, SEEK_SET) != 0) {
      return Status::IOErrorFromErrno("seek to payload of " + path, errno);
    }
    Reader reader;
    reader.buffer_.resize(payload_size);
    if (payload_size > 0 &&
        std::fread(reader.buffer_.data(), payload_size, 1, file.get()) !=
            1) {
      if (std::ferror(file.get())) {
        return Status::IOErrorFromErrno("read payload of " + path, errno);
      }
      return Status::InvalidArgument("truncated payload: " + path);
    }
    if (Fnv1a(reader.buffer_.data(), reader.buffer_.size()) != checksum) {
      return Status::InvalidArgument("checksum mismatch (corrupt file): " +
                                     path);
    }
    return reader;
  }

  template <typename T>
  Result<T> Get() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (sizeof(T) > buffer_.size() - position_) {
      return Status::InvalidArgument("payload underrun");
    }
    T value;
    std::memcpy(&value, buffer_.data() + position_, sizeof(T));
    position_ += sizeof(T);
    return value;
  }

  template <typename T>
  Status GetInto(std::vector<T>* out, size_t count) {
    // Division form: `position_ + count * sizeof(T)` can wrap for a
    // hostile count and sail past the bounds check.
    if (count > (buffer_.size() - position_) / sizeof(T)) {
      return Status::InvalidArgument("payload underrun");
    }
    out->resize(count);
    std::memcpy(out->data(), buffer_.data() + position_, count * sizeof(T));
    position_ += count * sizeof(T);
    return Status::OK();
  }

  /// Payload bytes not yet consumed — count fields sanity-check against
  /// this before any reserve().
  size_t remaining() const { return buffer_.size() - position_; }

 private:
  std::vector<uint8_t> buffer_;
  size_t position_ = 0;
};

}  // namespace

Status SaveRankingStore(const RankingStore& store, const std::string& path) {
  Writer writer;
  writer.Put<uint32_t>(store.k());
  writer.Put<uint64_t>(store.size());
  for (RankingId id = 0; id < store.size(); ++id) {
    writer.PutSpan(store.view(id).items());
  }
  return writer.WriteFile(path, kKindRankingStore);
}

Result<RankingStore> LoadRankingStore(const std::string& path) {
  auto reader = Reader::Open(path, kKindRankingStore);
  if (!reader.ok()) return reader.status();
  auto k = reader.value().Get<uint32_t>();
  if (!k.ok()) return k.status();
  if (k.value() == 0) {
    return Status::InvalidArgument("stored k must be positive");
  }
  auto n = reader.value().Get<uint64_t>();
  if (!n.ok()) return n.status();
  // Each stored ranking occupies k * 4 payload bytes; a count the
  // remaining payload cannot hold is corruption, caught here rather
  // than n Add() calls later.
  if (n.value() >
      reader.value().remaining() / (sizeof(ItemId) * k.value())) {
    return Status::InvalidArgument("stored ranking count exceeds payload");
  }

  RankingStore store(k.value());
  store.Reserve(static_cast<size_t>(n.value()));
  std::vector<ItemId> row;
  for (uint64_t i = 0; i < n.value(); ++i) {
    Status status = reader.value().GetInto(&row, k.value());
    if (!status.ok()) return status;
    auto added = store.Add(row);  // validated path: rejects corrupt rows
    if (!added.ok()) return added.status();
  }
  return store;
}

Status SavePartitioning(const Partitioning& partitioning,
                        const std::string& path) {
  Writer writer;
  writer.Put<uint64_t>(partitioning.partitions.size());
  for (const Partition& p : partitioning.partitions) {
    writer.Put<RankingId>(p.medoid);
    writer.Put<RawDistance>(p.radius);
    writer.Put<uint64_t>(p.members.size());
    writer.PutSpan<RankingId>(p.members);
  }
  return writer.WriteFile(path, kKindPartitioning);
}

Result<Partitioning> LoadPartitioning(const std::string& path) {
  auto reader = Reader::Open(path, kKindPartitioning);
  if (!reader.ok()) return reader.status();
  auto count = reader.value().Get<uint64_t>();
  if (!count.ok()) return count.status();
  // A partition record is at least medoid + radius + member count
  // (4 + 8 + 8 bytes); bound the declared count by what the payload can
  // hold before reserving.
  constexpr size_t kMinPartitionBytes =
      sizeof(RankingId) + sizeof(RawDistance) + sizeof(uint64_t);
  if (count.value() > reader.value().remaining() / kMinPartitionBytes) {
    return Status::InvalidArgument("partition count exceeds payload");
  }

  Partitioning partitioning;
  partitioning.partitions.reserve(count.value());
  for (uint64_t i = 0; i < count.value(); ++i) {
    Partition p;
    auto medoid = reader.value().Get<RankingId>();
    if (!medoid.ok()) return medoid.status();
    p.medoid = medoid.value();
    auto radius = reader.value().Get<RawDistance>();
    if (!radius.ok()) return radius.status();
    p.radius = radius.value();
    auto members = reader.value().Get<uint64_t>();
    if (!members.ok()) return members.status();
    Status status = reader.value().GetInto(&p.members, members.value());
    if (!status.ok()) return status;
    if (p.members.empty() || p.members.front() != p.medoid) {
      return Status::InvalidArgument(
          "partition invariant violated (medoid must lead members)");
    }
    partitioning.partitions.push_back(std::move(p));
  }
  return partitioning;
}

}  // namespace topk
