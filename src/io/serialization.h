// Binary persistence for the expensive-to-build artifacts: the ranking
// collection itself and a coarse-index partitioning.
//
// The inverted indexes rebuild from a store in milliseconds, so only the
// dataset (the ground truth) and the partitioning (the product of the
// distance-heavy clustering pass) are worth a disk format. A loaded
// partitioning is handed to CoarseIndex::BuildFromPartitioning, which
// rebuilds the per-partition BK-trees and medoid index deterministically.
//
// Format: magic, format version, payload sections, and an FNV-1a checksum
// over the payload — loads fail with a descriptive Status on a bad magic,
// version skew, truncation, or corruption. Files are written in the host
// byte order (this is cache persistence, not an interchange format).

#ifndef TOPK_IO_SERIALIZATION_H_
#define TOPK_IO_SERIALIZATION_H_

#include <string>

#include "cluster/partitioner.h"
#include "core/ranking.h"
#include "core/status.h"

namespace topk {

Status SaveRankingStore(const RankingStore& store, const std::string& path);
Result<RankingStore> LoadRankingStore(const std::string& path);

Status SavePartitioning(const Partitioning& partitioning,
                        const std::string& path);
Result<Partitioning> LoadPartitioning(const std::string& path);

}  // namespace topk

#endif  // TOPK_IO_SERIALIZATION_H_
